// Ablation study of SOFIA's design choices on a corrupted seasonal stream:
//   1. full            — the algorithm as published (plus our step cap)
//   2. no-reject       — outlier rejection (Eq. 21) disabled
//   3. gelper-order    — error scale updated *before* rejection (the
//                        ordering of Gelper et al. that Section V-C argues
//                        against: huge outliers inflate the scale first)
//   4. no-smooth       — λ1/λ2 temporal smoothness disabled everywhere
//   5. raw-step        — the verbatim Eq. (24)/(25) gradient step without
//                        the curvature cap (can oscillate on small slices)
//   6. no-decay        — λ3 kept constant during initialization (d = 1)
//
// Usage: ablation_design [--seed=23] [--seasons=7]

#include <cstdio>
#include <string>
#include <vector>

#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));
  const size_t seasons = static_cast<size_t>(flags.GetInt("seasons", 7));

  Dataset dataset = MakeNetworkTraffic(DatasetScale::kSmall);
  dataset.slices.resize(
      std::min(dataset.slices.size(), seasons * dataset.period));
  CorruptedStream stream = Corrupt(dataset.slices, {40.0, 15.0, 4.0}, seed);
  const SofiaConfig base = MakeExperimentConfig(dataset, stream);

  struct Variant {
    std::string name;
    SofiaConfig config;
    SofiaAblation ablation;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", base, {}});
  {
    SofiaAblation a;
    a.reject_outliers = false;
    variants.push_back({"no-reject", base, a});
  }
  {
    SofiaAblation a;
    a.scale_before_reject = true;
    variants.push_back({"gelper-order", base, a});
  }
  {
    SofiaConfig c = base;
    c.lambda1 = 0.0;
    c.lambda2 = 0.0;
    SofiaAblation a;
    a.temporal_smoothness = false;
    variants.push_back({"no-smooth", c, a});
  }
  {
    SofiaConfig c = base;
    c.normalized_step = false;
    variants.push_back({"raw-step", c, {}});
  }
  {
    SofiaConfig c = base;
    c.lambda3_decay = 1.0;
    variants.push_back({"no-decay", c, {}});
  }

  std::printf("Ablation — %s, setting (40,15,4), %zu steps\n\n",
              dataset.name.c_str(), dataset.slices.size());
  Table table({"variant", "RAE", "RAE post-init", "vs full"});
  double full_rae = 0.0;
  for (const Variant& v : variants) {
    SofiaStream method(v.config, v.ablation, "SOFIA(" + v.name + ")");
    StreamRunResult res = RunImputation(&method, stream, dataset.slices);
    if (v.name == "full") full_rae = res.rae;
    table.AddRow({v.name, Table::Num(res.rae), Table::Num(res.rae_post_init),
                  full_rae > 0 ? Table::Num(res.rae / full_rae, 3) + "x"
                               : "-"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected ordering: every ablation is at or above the full "
              "algorithm's error; no-reject and no-smooth degrade most "
              "under this corruption level.\n");
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
