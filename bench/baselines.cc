// Per-step cost of the streaming baselines ported onto the ObservedSweep
// core: the original dense-scan reference path vs the observed-entry path,
// at 1% / 10% / 100% observed density (fixed Bernoulli mask across steps, so
// the sparse path's mask-reuse cache holds after the first step — the
// fixed-sensor-outage case, matching BENCH_stream.json's setup).
//
// Unlike the google-benchmark targets this harness emits its summary JSON
// directly (same schema as BENCH_kernels.json / BENCH_stream.json):
//
//   bench_baselines [--out=BENCH_baselines.json] [--steps=40] [--reps=3]
//
// The driving CMake target is gated behind SOFIA_BUILD_BENCH like every
// other bench binary.

#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "data/synthetic.hpp"
#include "eval/streaming_method.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

constexpr size_t kRows = 48;
constexpr size_t kCols = 48;
constexpr size_t kRank = 4;
constexpr size_t kPeriod = 8;
constexpr size_t kWarmup = 2;

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

using MethodFactory =
    std::function<std::unique_ptr<StreamingMethod>(bool sparse)>;

std::vector<std::pair<std::string, MethodFactory>> MethodFactories() {
  std::vector<std::pair<std::string, MethodFactory>> out;
  out.emplace_back("OnlineSgd", [](bool sparse) -> std::unique_ptr<StreamingMethod> {
    OnlineSgdOptions o;
    o.rank = kRank;
    o.use_sparse_kernels = sparse;
    return std::make_unique<OnlineSgd>(o);
  });
  out.emplace_back("Olstec", [](bool sparse) -> std::unique_ptr<StreamingMethod> {
    OlstecOptions o;
    o.rank = kRank;
    o.use_sparse_kernels = sparse;
    return std::make_unique<Olstec>(o);
  });
  out.emplace_back("Mast", [](bool sparse) -> std::unique_ptr<StreamingMethod> {
    MastOptions o;
    o.rank = kRank;
    o.use_sparse_kernels = sparse;
    return std::make_unique<Mast>(o);
  });
  out.emplace_back("OrMstc", [](bool sparse) -> std::unique_ptr<StreamingMethod> {
    OrMstcOptions o;
    o.rank = kRank;
    o.use_sparse_kernels = sparse;
    return std::make_unique<OrMstc>(o);
  });
  out.emplace_back("Brst", [](bool sparse) -> std::unique_ptr<StreamingMethod> {
    BrstOptions o;
    o.rank = kRank;
    o.use_sparse_kernels = sparse;
    return std::make_unique<BrstLite>(o);
  });
  out.emplace_back("Smf", [](bool sparse) -> std::unique_ptr<StreamingMethod> {
    SmfOptions o;
    o.rank = kRank;
    o.period = kPeriod;
    o.use_sparse_kernels = sparse;
    return std::make_unique<Smf>(o);
  });
  return out;
}

/// Best (minimum) per-step wall time (ns) over `reps` fresh runs of `steps`
/// steps each, after kWarmup untimed steps per run. The minimum across
/// repetitions is the standard noise-robust estimator on shared machines:
/// contention only ever inflates a repetition. `observe` times the
/// forecast-protocol advance (StreamingMethod::Observe, no dense estimate
/// materialized) instead of the imputation Step.
double TimeMethod(const MethodFactory& factory, bool sparse, bool observe,
                  const std::vector<DenseTensor>& slices, const Mask& omega,
                  size_t steps, size_t reps) {
  double best_ns = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::unique_ptr<StreamingMethod> method = factory(sparse);
    for (size_t t = 0; t < kWarmup; ++t) {
      method->Step(slices[t % slices.size()], omega);
    }
    Stopwatch timer;
    for (size_t t = 0; t < steps; ++t) {
      const DenseTensor& slice = slices[(kWarmup + t) % slices.size()];
      if (observe) {
        method->Observe(slice, omega);
      } else {
        method->Step(slice, omega);
      }
    }
    const double rep_ns = timer.ElapsedSeconds() * 1e9;
    if (rep == 0 || rep_ns < best_ns) best_ns = rep_ns;
  }
  return best_ns / static_cast<double>(steps);
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_baselines.json");
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 40));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));

  std::vector<DenseTensor> slices;
  {
    SyntheticTensor syn = MakeSinusoidTensor(
        kRows, kCols, kWarmup + steps, kRank, kPeriod, /*seed=*/101);
    for (size_t t = 0; t < kWarmup + steps; ++t) {
      slices.push_back(syn.tensor.SliceLastMode(t));
    }
  }

  const std::vector<int> densities = {1, 5, 10, 100};
  std::map<std::string, double> results;   // "BM_MastDense/10_mean" -> ns.
  std::map<std::string, double> speedups;  // "mast_density_10pct" -> x.

  for (const auto& [name, factory] : MethodFactories()) {
    std::string lower = name;
    for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
    for (int density : densities) {
      Rng mask_rng(7);  // Same mask for every method and both paths.
      Mask omega = BernoulliMask(slices[0].shape(),
                                 static_cast<double>(density) / 100.0,
                                 mask_rng);
      const std::string arg = std::to_string(density);
      for (bool observe : {false, true}) {
        const std::string proto = observe ? "Observe" : "Step";
        const double dense_ns = TimeMethod(factory, /*sparse=*/false, observe,
                                           slices, omega, steps, reps);
        const double sparse_ns = TimeMethod(factory, /*sparse=*/true, observe,
                                            slices, omega, steps, reps);
        results["BM_" + name + proto + "Dense/" + arg + "_min"] = dense_ns;
        results["BM_" + name + proto + "Sparse/" + arg + "_min"] = sparse_ns;
        std::string proto_lower = proto;
        for (char& ch : proto_lower) ch = static_cast<char>(std::tolower(ch));
        speedups[lower + "_" + proto_lower + "_density_" + arg + "pct"] =
            sparse_ns > 0.0 ? dense_ns / sparse_ns : 0.0;
        std::printf("%-10s %-7s density %3d%%: dense %10.0f ns/step, sparse "
                    "%10.0f ns/step, speedup %.2fx\n",
                    name.c_str(), proto.c_str(), density, dense_ns, sparse_ns,
                    sparse_ns > 0.0 ? dense_ns / sparse_ns : 0.0);
      }
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"description\": \"Streaming baselines on the ObservedSweep "
               "core: per-step cost of the dense-scan reference path vs the "
               "observed-entry path, %zux%zu slices, rank %zu, fixed "
               "Bernoulli mask across steps (the fixed-sensor-outage case, "
               "so the sparse path's mask-reuse cache holds after the first "
               "step), argument = percent of entries observed. Step times "
               "include the dense KruskalSlice estimate the imputation "
               "protocol returns (an O(volume R) floor shared by both "
               "paths); Observe times the forecast-protocol advance "
               "(StreamingMethod::Observe), where neither path materializes "
               "the output-only reconstruction — the same accounting "
               "BENCH_stream.json uses for SOFIA's lazy step. Best (min) "
               "per-step real time over %zu repetitions of %zu steps, "
               "single thread (bench_baselines "
               "--out=BENCH_baselines.json).\",\n",
               kRows, kCols, kRank, reps, steps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"ns\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    std::fprintf(f, "    \"%s\": %.0f%s\n", key.c_str(), value,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_sparse_over_dense\": {\n");
  i = 0;
  for (const auto& [key, value] : speedups) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", key.c_str(), value,
                 ++i < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
