// Observability overhead on the hot path: the 96-step lazy comparison
// pipeline (the BENCH_pipeline workload shape at 5% observed density) is
// timed with the metrics registry enabled (the default — every kernel
// call, pipeline stage, and step-latency histogram observation counted)
// against the same run with obs::SetEnabled(false), where every Counter /
// Histogram / ObsSpan call short-circuits on one relaxed atomic load.
// The acceptance bar for the obs subsystem is enabled-vs-disabled
// overhead < 3% on this bench. No trace session is active in either arm
// (tracing is an opt-in debugging artifact, not an always-on cost).
//
// Emits its summary JSON directly (same schema as BENCH_pipeline.json):
//
//   bench_obs [--out=BENCH_obs.json] [--rows=448] [--cols=448]
//             [--steps=96] [--reps=5] [--eval_cap=512] [--density=5]
//
// The driving CMake target is gated behind SOFIA_BUILD_BENCH like every
// other bench binary.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_runner.hpp"
#include "obs/obs.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

constexpr size_t kRank = 4;
constexpr size_t kPeriod = 4;

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

/// Fresh SOFIA + OnlineSGD instances (the robust method plus the cheapest
/// baseline: the pair exercises every instrumented layer — kernels,
/// pipeline stages, executor, model step — without the full nine-method
/// bench cost).
std::vector<std::unique_ptr<StreamingMethod>> MakeMethods() {
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  SofiaConfig config;
  config.rank = kRank;
  config.period = kPeriod;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  config.max_init_iterations = 1;
  config.max_als_iterations = 2;
  config.tolerance = 0.5;  // The bench measures obs cost, not fit.
  methods.push_back(std::make_unique<SofiaStream>(config));
  methods.push_back(
      std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = kRank}));
  return methods;
}

/// Wall seconds of one full comparison run with fresh method instances.
double TimeComparisonOnce(const CorruptedStream& stream,
                          const std::vector<DenseTensor>& truth,
                          const StreamEvalOptions& options) {
  std::vector<std::unique_ptr<StreamingMethod>> owned = MakeMethods();
  std::vector<StreamingMethod*> methods;
  for (auto& m : owned) methods.push_back(m.get());
  Stopwatch timer;
  RunImputationComparison(methods, stream, truth, options);
  return timer.ElapsedSeconds();
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_obs.json");
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 448));
  const size_t cols = static_cast<size_t>(flags.GetInt("cols", 448));
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 96));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t eval_cap = static_cast<size_t>(flags.GetInt("eval_cap", 512));
  const int density = static_cast<int>(flags.GetInt("density", 5));

  std::vector<DenseTensor> truth;
  {
    SyntheticTensor syn =
        MakeSinusoidTensor(rows, cols, steps, kRank, kPeriod, /*seed=*/101);
    for (size_t t = 0; t < steps; ++t) {
      truth.push_back(syn.tensor.SliceLastMode(t));
    }
  }
  Rng mask_rng(7);
  Mask omega = BernoulliMask(truth[0].shape(),
                             static_cast<double>(density) / 100.0, mask_rng);
  CorruptedStream stream;
  stream.slices = truth;
  stream.masks.assign(steps, omega);

  StreamEvalOptions options;
  options.max_eval_entries = eval_cap;

  // One warm-up rep (the registry's FindOrCreate statics resolve here, not
  // inside a timed run), then the arms run interleaved with the order
  // *alternating* each rep: back-to-back runs warm each other (the second
  // run of a pair measures ~1% faster whatever it is), so a fixed order
  // would bias the comparison by more than the effect being measured.
  // Best (min) per arm over `reps` pairs.
  obs::SetEnabled(true);
  TimeComparisonOnce(stream, truth, options);
  double enabled_s = 0.0, disabled_s = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    double on = 0.0, off = 0.0;
    if (rep % 2 == 0) {
      obs::SetEnabled(true);
      on = TimeComparisonOnce(stream, truth, options);
      obs::SetEnabled(false);
      off = TimeComparisonOnce(stream, truth, options);
    } else {
      obs::SetEnabled(false);
      off = TimeComparisonOnce(stream, truth, options);
      obs::SetEnabled(true);
      on = TimeComparisonOnce(stream, truth, options);
    }
    if (rep == 0 || on < enabled_s) enabled_s = on;
    if (rep == 0 || off < disabled_s) disabled_s = off;
  }
  obs::SetEnabled(true);

  const double overhead_percent =
      disabled_s > 0.0 ? (enabled_s / disabled_s - 1.0) * 100.0 : 0.0;
  std::printf("obs enabled %8.3f s, disabled %8.3f s, overhead %+.2f%% "
              "(bar: < 3%%)\n",
              enabled_s, disabled_s, overhead_percent);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"description\": \"Observability hot-path overhead: the "
               "lazy comparison pipeline (SOFIA + OnlineSGD over a "
               "%zu-step stream of %zux%zu slices, rank %zu, fixed "
               "Bernoulli mask at %d%% observed, <= %zu held-out entries "
               "scored per step) timed with the obs metrics registry "
               "enabled vs obs::SetEnabled(false), where every counter / "
               "histogram / span call short-circuits on one relaxed "
               "atomic load. No trace session in either arm. Best (min) "
               "wall time over %zu repetitions, single thread; "
               "overhead_percent = (enabled/disabled - 1) * 100, "
               "acceptance bar < 3 (bench_obs --out=BENCH_obs.json).\",\n",
               steps, rows, cols, kRank, density, eval_cap, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"s\",\n");
  std::fprintf(f, "  \"results\": {\n");
  std::fprintf(f, "    \"pipeline_obs_enabled_s\": %.4f,\n", enabled_s);
  std::fprintf(f, "    \"pipeline_obs_disabled_s\": %.4f\n", disabled_s);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"overhead_percent\": %.2f\n", overhead_percent);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
