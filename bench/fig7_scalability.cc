// Reproduces Fig. 7: linear scalability of SOFIA's dynamic updates.
// (a) total running time vs the number of entries per subtensor (the paper
//     samples {50,...,500} rows of 500x500 slices over 5000 steps), and
// (b) cumulative running time vs stream index (straight line = constant
//     per-step cost).
// All entries observed, no outliers; initialization and HW fitting excluded
// from the timings, as in Section VI-F.
//
// Usage: fig7_scalability [--scale=small|paper] [--seed=19]

#include <cstdio>
#include <string>
#include <vector>

#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool paper = flags.GetString("scale", "small") == "paper";
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 19));

  const size_t cols = paper ? 500 : 120;
  const size_t steps = paper ? 5000 : 400;
  const size_t period = 10;
  const size_t rank = 5;
  const std::vector<size_t> row_grid =
      paper ? std::vector<size_t>{50, 100, 150, 200, 250, 300, 350, 400, 450,
                                  500}
            : std::vector<size_t>{20, 40, 60, 80, 100, 120};

  std::printf("Fig. 7(a) — total dynamic-update time vs entries per "
              "subtensor (%zux<rows> slices, %zu steps, m=%zu)\n\n",
              cols, steps, period);

  Table table({"rows", "entries/step", "total time (s)", "us/entry"});
  std::vector<double> cumulative_last;
  for (size_t rows : row_grid) {
    std::vector<DenseTensor> truth =
        MakeScalabilityStream(rows, cols, steps, rank, period, seed);
    CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, seed + 1);

    SofiaConfig config;
    config.rank = rank;
    config.period = period;
    config.init_seasons = 3;
    // Clean, fully observed stream: initialization converges immediately
    // and is excluded from the timing anyway.
    config.max_init_iterations = 2;
    SofiaStream method(config);
    StreamRunResult res = RunImputation(&method, stream, truth);

    double total = 0.0;
    cumulative_last.clear();
    for (double s : res.step_seconds) {
      total += s;
      cumulative_last.push_back(total);
    }
    const double entries = static_cast<double>(rows * cols);
    table.AddRow({std::to_string(rows),
                  std::to_string(rows * cols),
                  Table::Num(total),
                  Table::Num(1e6 * total /
                             (entries * static_cast<double>(
                                            res.step_seconds.size())))});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Fig. 7(b) — cumulative time vs stream index (largest "
              "configuration): a straight line means constant per-step "
              "cost.\n\n");
  Table cumulative({"stream index", "cumulative time (s)"});
  const size_t n = cumulative_last.size();
  for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 10)) {
    cumulative.AddRow({std::to_string(i), Table::Num(cumulative_last[i])});
  }
  if (n > 0) {
    cumulative.AddRow({std::to_string(n - 1),
                       Table::Num(cumulative_last[n - 1])});
  }
  std::printf("%s\n", cumulative.ToString().c_str());
  std::printf("Paper's shape: both curves are linear — per-step cost is "
              "O(|Omega_t| N R) and independent of the stream length "
              "(Lemma 2).\n");
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
