// Reproduces Fig. 2: initialization accuracy of SOFIA_ALS vs vanilla ALS on
// a synthetic 30x30x90 rank-3 tensor with sinusoidal temporal factors under
// the extremely harsh (90, 20, 7) setting. The paper shows the smooth
// initialization recovering the temporal patterns while vanilla ALS
// diverges (factor magnitudes exploding into the thousands).
//
// Usage: fig2_init_accuracy [--outer=40] [--seed=7] [--csv=path]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/sofia_als.hpp"
#include "core/sofia_init.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "linalg/solve.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

/// NRE between the recovered and ground-truth temporal factor, after
/// resolving the CP permutation/scale ambiguity: each true column is greedily
/// matched to the best remaining estimated column with a least-squares scale.
double TemporalFactorNre(const Matrix& estimate, const Matrix& truth) {
  const size_t rank = truth.cols();
  std::vector<bool> used(rank, false);
  double err2 = 0.0, truth2 = 0.0;
  for (size_t rt = 0; rt < rank; ++rt) {
    std::vector<double> t = truth.ColVector(rt);
    double best_resid = -1.0;
    size_t best = 0;
    double best_scale = 0.0;
    for (size_t re = 0; re < rank; ++re) {
      if (used[re]) continue;
      std::vector<double> e = estimate.ColVector(re);
      double ee = 0.0, et = 0.0;
      for (size_t i = 0; i < e.size(); ++i) {
        ee += e[i] * e[i];
        et += e[i] * t[i];
      }
      const double scale = ee > 0.0 ? et / ee : 0.0;
      double resid = 0.0;
      for (size_t i = 0; i < e.size(); ++i) {
        const double d = t[i] - scale * e[i];
        resid += d * d;
      }
      if (best_resid < 0.0 || resid < best_resid) {
        best_resid = resid;
        best = re;
        best_scale = scale;
      }
    }
    used[best] = true;
    (void)best_scale;
    err2 += best_resid;
    for (double v : t) truth2 += v * v;
  }
  return truth2 > 0.0 ? std::sqrt(err2 / truth2) : 0.0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int max_outer = static_cast<int>(flags.GetInt("outer", 40));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // The paper's synthetic workload: 30x30x90, rank 3, period 30.
  SyntheticTensor syn = MakeSinusoidTensor(30, 30, 90, 3, 30, seed);
  std::vector<DenseTensor> truth_slices;
  for (size_t t = 0; t < 90; ++t) {
    truth_slices.push_back(syn.tensor.SliceLastMode(t));
  }
  CorruptedStream stream = Corrupt(truth_slices, {90.0, 20.0, 7.0}, seed + 1);
  DenseTensor truth = syn.tensor;

  SofiaConfig config;
  config.rank = 3;
  config.period = 30;
  config.init_seasons = 3;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.seed = seed;

  std::printf("Fig. 2 — initialization accuracy, 30x30x90 rank-3, "
              "(90,20,7)\n\n");
  Table table({"outer iters", "vanilla tensor NRE", "vanilla temporal NRE",
               "sofia tensor NRE", "sofia temporal NRE"});
  for (int outer : {1, 2, 5, 10, 20, max_outer}) {
    if (outer > max_outer) break;
    config.max_init_iterations = outer;
    SofiaInitResult vanilla = SofiaInitialize(stream.slices, stream.masks,
                                              config,
                                              /*smooth_temporal=*/false);
    SofiaInitResult smooth = SofiaInitialize(stream.slices, stream.masks,
                                             config,
                                             /*smooth_temporal=*/true);
    table.AddRow(
        {std::to_string(outer),
         Table::Num(NormalizedResidualError(vanilla.completed, truth)),
         Table::Num(TemporalFactorNre(vanilla.factors.back(),
                                      syn.factors.back())),
         Table::Num(NormalizedResidualError(smooth.completed, truth)),
         Table::Num(TemporalFactorNre(smooth.factors.back(),
                                      syn.factors.back()))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper's shape: vanilla ALS fails to recover the temporal "
              "patterns (Fig. 2b) while SOFIA_ALS converges (Fig. 2c/2d).\n");
  if (flags.Has("csv")) table.WriteCsv(flags.GetString("csv", ""));
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
