#include <gtest/gtest.h>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/stream_runner.hpp"
#include "tensor/kruskal.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

/// Every algorithm in the library is mode-generic; these tests pin that on
/// 4-way tensors (3-way slices), e.g. (position, sensor, metric, time).

constexpr double kTwoPi = 6.283185307179586;

/// Rank-R 4-way seasonal ground truth as a stream of 3-way slices.
std::vector<DenseTensor> MakeFourWayStream(size_t i1, size_t i2, size_t i3,
                                           size_t steps, size_t rank,
                                           size_t period, uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors = {Matrix::Random(i1, rank, rng, 0.0, 1.0),
                                 Matrix::Random(i2, rank, rng, 0.0, 1.0),
                                 Matrix::Random(i3, rank, rng, 0.0, 1.0)};
  std::vector<DenseTensor> slices;
  std::vector<double> w(rank);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t r = 0; r < rank; ++r) {
      w[r] = 1.5 + std::sin(kTwoPi * static_cast<double>(t % period) /
                                static_cast<double>(period) +
                            static_cast<double>(r));
    }
    slices.push_back(KruskalSlice(factors, w));
  }
  return slices;
}

/// `lambda` policy mirrors the 3-way tests: paper default for clean
/// streams, scaled smoothness plus a data-scaled λ3 under corruption.
SofiaConfig FourWayConfig(const CorruptedStream& stream, double lambda) {
  SofiaConfig config;
  config.rank = 2;
  config.period = 6;
  config.init_seasons = 3;
  config.lambda1 = lambda;
  config.lambda2 = lambda;
  config.lambda3 = 3.0 * ObservedAbsQuantile(stream, 0.75);
  config.max_init_iterations = 10;
  return config;
}

TEST(MultiwayTest, SofiaTracksCleanFourWayStream) {
  std::vector<DenseTensor> truth =
      MakeFourWayStream(6, 5, 4, 48, 2, 6, 81);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 82);
  SofiaStream method(FourWayConfig(stream, /*lambda=*/1e-3));
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_LT(res.rae_post_init, 0.1);
}

TEST(MultiwayTest, SofiaImputesCorruptedFourWayStream) {
  std::vector<DenseTensor> truth =
      MakeFourWayStream(6, 5, 4, 48, 2, 6, 83);
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, 84);
  SofiaStream method(FourWayConfig(stream, /*lambda=*/0.5));
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_LT(res.rae, 0.5);

  OnlineSgd sgd(OnlineSgdOptions{.rank = 2});
  StreamRunResult sgd_res = RunImputation(&sgd, stream, truth);
  EXPECT_LT(res.rae, sgd_res.rae);
}

TEST(MultiwayTest, ForecastShapesMatchSliceShape) {
  std::vector<DenseTensor> truth =
      MakeFourWayStream(6, 5, 4, 36, 2, 6, 85);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 86);
  SofiaStream method(FourWayConfig(stream, /*lambda=*/1e-3));
  const size_t w = method.init_window();
  std::vector<DenseTensor> init(stream.slices.begin(),
                                stream.slices.begin() + w);
  std::vector<Mask> masks(stream.masks.begin(), stream.masks.begin() + w);
  method.Initialize(init, masks);
  DenseTensor forecast = method.Forecast(3);
  EXPECT_EQ(forecast.shape().dims(), (std::vector<size_t>{6, 5, 4}));
}

TEST(MultiwayTest, FiveWayKruskalRoundtrip) {
  // Deep-order sanity: a 5-way Kruskal tensor is consistent with its
  // factors entry-by-entry.
  Rng rng(87);
  std::vector<Matrix> factors;
  const std::vector<size_t> dims = {3, 2, 4, 2, 3};
  for (size_t d : dims) factors.push_back(Matrix::RandomNormal(d, 2, rng));
  DenseTensor x = KruskalTensor(factors);
  std::vector<size_t> idx(5, 0);
  for (size_t linear = 0; linear < x.NumElements(); ++linear) {
    EXPECT_NEAR(x[linear], KruskalEntry(factors, idx), 1e-12);
    x.shape().Next(&idx);
  }
}

}  // namespace
}  // namespace sofia
