#include "tensor/sparse_mask.hpp"

#include <gtest/gtest.h>

#include "tensor/coo_list.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

Mask RandomMask(const Shape& shape, double density, uint64_t seed) {
  Rng rng(seed);
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

TEST(SparseMaskTest, RoundTripsThroughDenseMask) {
  for (double density : {0.0, 0.07, 0.5, 1.0}) {
    Mask omega = RandomMask(Shape({5, 4, 3}), density, 11);
    SparseMask sparse = SparseMask::FromMask(omega);
    EXPECT_TRUE(sparse.valid());
    EXPECT_EQ(sparse.nnz(), omega.CountObserved());
    EXPECT_TRUE(sparse.ToMask() == omega);
    EXPECT_TRUE(sparse.Matches(omega));
  }
}

TEST(SparseMaskTest, FromIndicesAndFromCooAgree) {
  Mask omega = RandomMask(Shape({6, 5}), 0.3, 13);
  CooList coo = CooList::Build(omega);
  SparseMask from_coo = SparseMask::FromCoo(coo);
  SparseMask from_idx =
      SparseMask::FromIndices(omega.shape(), omega.ObservedIndices());
  EXPECT_TRUE(from_coo == from_idx);
  EXPECT_TRUE(from_coo == SparseMask::FromMask(omega));
}

TEST(SparseMaskTest, DefaultConstructedIsInvalidAndMatchesNothing) {
  SparseMask empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Matches(Mask(Shape({2, 2}), false)));
}

TEST(SparseMaskTest, MatchesRejectsSubsetsAndSupersets) {
  // Equal count + containment is the equality proof Matches relies on;
  // strict subsets and supersets must both reject.
  Mask omega(Shape({4, 4}), false);
  omega.Set(1, true);
  omega.Set(9, true);
  SparseMask sparse = SparseMask::FromMask(omega);

  Mask superset = omega;
  superset.Set(12, true);
  EXPECT_FALSE(sparse.Matches(superset));  // Count differs.

  Mask shifted(Shape({4, 4}), false);
  shifted.Set(1, true);
  shifted.Set(10, true);  // Same count, different support.
  EXPECT_FALSE(sparse.Matches(shifted));

  EXPECT_FALSE(sparse.Matches(Mask(Shape({4, 5}), false)));  // Shape.
  EXPECT_TRUE(sparse.Matches(omega));
}

TEST(SparseMaskTest, EqualityEarlyExitsOnSize) {
  SparseMask a = SparseMask::FromIndices(Shape({3, 3}), {0, 4});
  SparseMask b = SparseMask::FromIndices(Shape({3, 3}), {0, 4, 8});
  SparseMask c = SparseMask::FromIndices(Shape({3, 3}), {0, 5});
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a != c);
  EXPECT_TRUE(a == SparseMask::FromIndices(Shape({3, 3}), {0, 4}));
}

TEST(SparseMaskTest, DeltaSizeIsSymmetricDifference) {
  SparseMask a = SparseMask::FromIndices(Shape({4, 4}), {0, 3, 7, 9});
  SparseMask b = SparseMask::FromIndices(Shape({4, 4}), {3, 7, 10});
  // A-only: {0, 9}; B-only: {10} -> delta 3, symmetric.
  EXPECT_EQ(a.DeltaSize(b), 3u);
  EXPECT_EQ(b.DeltaSize(a), 3u);
  EXPECT_EQ(a.DeltaSize(a), 0u);
  SparseMask empty = SparseMask::FromIndices(Shape({4, 4}), {});
  EXPECT_EQ(a.DeltaSize(empty), a.nnz());
}

TEST(SparseMaskTest, CooFromIndicesMatchesDenseBuild) {
  // The |Ω|-scaling CooList construction path must produce the identical
  // structure (records, coords, buckets) as the dense-mask build.
  Mask omega = RandomMask(Shape({4, 3, 5}), 0.25, 17);
  CooList dense_built = CooList::Build(omega);
  CooList from_idx =
      CooList::FromIndices(omega.shape(), omega.ObservedIndices());
  ASSERT_EQ(from_idx.nnz(), dense_built.nnz());
  EXPECT_EQ(from_idx.LinearIndices(), dense_built.LinearIndices());
  for (size_t k = 0; k < from_idx.nnz(); ++k) {
    for (size_t n = 0; n < from_idx.order(); ++n) {
      EXPECT_EQ(from_idx.Index(k, n), dense_built.Index(k, n));
    }
  }
  for (size_t n = 0; n < from_idx.order(); ++n) {
    EXPECT_EQ(from_idx.ModeOrder(n), dense_built.ModeOrder(n));
    EXPECT_EQ(from_idx.SlicePtr(n), dense_built.SlicePtr(n));
  }
}

}  // namespace
}  // namespace sofia
