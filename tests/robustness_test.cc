// End-to-end robustness sweep: every streaming method, wrapped in a
// rollback StreamGuard, is driven through every scenario of the
// adversarial catalog and must produce finite scores everywhere — NaN
// payloads, whole-row Markov outages, regime changes, structured outlier
// bursts, and huge-finite garbage included. Garbage scenarios must also
// actually exercise the guard (trips recorded, episodes closed).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/cp_wopt_stream.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/scenarios.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_guard.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

/// All nine methods, each wrapped in a rollback guard.
std::vector<std::unique_ptr<StreamingMethod>> MakeGuardedMethods() {
  StreamGuardOptions guard;
  guard.policy = GuardPolicy::kRollback;
  std::vector<std::unique_ptr<StreamingMethod>> inner;
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  inner.push_back(std::make_unique<SofiaStream>(config));
  inner.push_back(std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}));
  inner.push_back(std::make_unique<Olstec>(OlstecOptions{.rank = 3}));
  inner.push_back(std::make_unique<Mast>(MastOptions{.rank = 3}));
  inner.push_back(std::make_unique<OrMstc>(
      OrMstcOptions{.rank = 3, .outlier_lambda = 2.0}));
  inner.push_back(std::make_unique<BrstLite>(BrstOptions{.rank = 4}));
  inner.push_back(std::make_unique<Smf>(SmfOptions{.rank = 3, .period = 4}));
  inner.push_back(std::make_unique<Cphw>(CphwOptions{.rank = 3,
                                                     .period = 4}));
  inner.push_back(std::make_unique<CpWoptStream>(
      CpWoptStreamOptions{.rank = 3, .iterations_per_step = 5}));
  std::vector<std::unique_ptr<StreamingMethod>> guarded;
  for (auto& method : inner) {
    guarded.push_back(
        std::make_unique<StreamGuard>(std::move(method), guard));
  }
  return guarded;
}

TEST(RobustnessTest, AllNineGuardedMethodsStayFiniteAcrossEveryScenario) {
  const size_t steps = 36;
  std::vector<DenseTensor> truth = MakeTruth(steps, 251);
  ScenarioOptions options;
  options.garbage_offset = 16;  // Past every method's init window.
  options.garbage_every = 12;   // Faults at steps 16 (NaN) and 28 (huge).

  for (ScenarioKind kind : ScenarioCatalog()) {
    SCOPED_TRACE(ScenarioName(kind));
    ScenarioStream scenario = MakeScenario(kind, truth, options, 252);

    std::vector<std::unique_ptr<StreamingMethod>> owned =
        MakeGuardedMethods();
    std::vector<StreamingMethod*> methods;
    for (auto& m : owned) methods.push_back(m.get());
    ASSERT_EQ(methods.size(), 9u);

    std::vector<MethodRunResult> results = RunImputationComparison(
        methods, scenario.stream, scenario.truth);

    for (const MethodRunResult& result : results) {
      SCOPED_TRACE(result.name);
      ASSERT_TRUE(result.run.guarded);
      EXPECT_TRUE(std::isfinite(result.run.rae));
      EXPECT_TRUE(std::isfinite(result.run.rae_post_init));
      for (size_t t = 0; t < steps; ++t) {
        ASSERT_TRUE(std::isfinite(result.run.nre[t])) << "t=" << t;
        ASSERT_TRUE(std::isfinite(result.run.observed_nre[t])) << "t=" << t;
        ASSERT_TRUE(std::isfinite(result.run.missing_nre[t])) << "t=" << t;
      }
      if (kind == ScenarioKind::kGarbageSlices ||
          kind == ScenarioKind::kCombinedStress) {
        // The NaN slice at step 16 must trip input validation for every
        // method, and at least one fault episode must close (the step-16
        // fault recovers before the combined-stress regime change at 18).
        EXPECT_GE(result.run.guard.input_trips, 1u);
        EXPECT_GE(result.run.guard.recoveries, 1u);
      } else {
        EXPECT_EQ(result.run.guard.input_trips, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace sofia
