// The lazy StepResult pipeline, end to end:
//  - StepResult's accessors (at / GatherAt / imputed) agree across kinds,
//    and the materialization counter fires exactly on lazy densification;
//  - RunImputationComparison scores are bitwise identical between the lazy
//    and forced-dense paths for every method (SOFIA + all eight baselines),
//    including empty-Ω, full-Ω, and mask-reuse steps;
//  - the lazy protocol performs zero full-volume reconstructions
//    (counter-verified), killing the O(volume R) dense floor the dense
//    protocol pays per method per step.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/cp_wopt_stream.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/observed_sweep.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/step_result.hpp"
#include "eval/stream_runner.hpp"
#include "tensor/kruskal.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

// ---------------------------------------------------------------- handles

std::vector<Matrix> SmallFactors(uint64_t seed) {
  Rng rng(seed);
  return {Matrix::Random(4, 3, rng, -1.0, 1.0),
          Matrix::Random(5, 3, rng, -1.0, 1.0)};
}

TEST(StepResultTest, KruskalViewMatchesKruskalSlice) {
  std::vector<Matrix> factors = SmallFactors(7);
  std::vector<double> w = {0.3, -1.2, 0.5};
  StepResult lazy = StepResult::Kruskal(factors, w);
  DenseTensor reference = KruskalSlice(factors, w);

  Mask omega(reference.shape(), true);
  CooList all = CooList::Build(omega, /*with_mode_buckets=*/false);
  std::vector<double> gathered = lazy.GatherAt(all);
  ASSERT_EQ(gathered.size(), reference.NumElements());
  for (size_t k = 0; k < gathered.size(); ++k) {
    // The gather replicates the chain arithmetic bitwise.
    EXPECT_EQ(gathered[k], reference[all.LinearIndex(k)]);
  }
  EXPECT_NEAR(lazy.at({1, 2}), reference[reference.shape().Linearize({1, 2})],
              1e-12);

  EXPECT_FALSE(lazy.materialized());
  const size_t before = StepResult::materializations();
  const DenseTensor& dense = lazy.imputed();
  EXPECT_EQ(StepResult::materializations(), before + 1);
  for (size_t k = 0; k < reference.NumElements(); ++k) {
    EXPECT_EQ(dense[k], reference[k]);
  }
  // Cached: a second read does not re-materialize.
  lazy.imputed();
  EXPECT_EQ(StepResult::materializations(), before + 1);
}

TEST(StepResultTest, MaskedViewReadsObservedAndZeroes) {
  auto y = std::make_shared<const DenseTensor>(Shape({2, 3}), 5.0);
  Mask omega(y->shape(), false);
  omega.Set(0, true);
  omega.Set(4, true);
  StepResult lazy = StepResult::Masked(y, omega);
  EXPECT_EQ(lazy.at({0, 0}), 5.0);
  EXPECT_EQ(lazy.at({1, 0}), 0.0);
  const DenseTensor& dense = lazy.imputed();
  EXPECT_EQ(dense[0], 5.0);
  EXPECT_EQ(dense[1], 0.0);
  EXPECT_EQ(dense[4], 5.0);
}

TEST(StepResultTest, DenseKindDoesNotCountAsMaterialization) {
  const size_t before = StepResult::materializations();
  StepResult dense = StepResult::Dense(DenseTensor(Shape({2, 2}), 1.0));
  EXPECT_TRUE(dense.materialized());
  dense.imputed();
  EXPECT_EQ(StepResult::materializations(), before);
}

// ------------------------------------------------- nine-method comparison

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

/// All nine streaming methods of the comparison protocols, small configs.
std::vector<std::unique_ptr<StreamingMethod>> MakeAllMethods() {
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  methods.push_back(std::make_unique<SofiaStream>(config));
  methods.push_back(std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}));
  methods.push_back(std::make_unique<Olstec>(OlstecOptions{.rank = 3}));
  methods.push_back(std::make_unique<Mast>(MastOptions{.rank = 3}));
  methods.push_back(std::make_unique<OrMstc>(
      OrMstcOptions{.rank = 3, .outlier_lambda = 2.0}));
  methods.push_back(std::make_unique<BrstLite>(BrstOptions{.rank = 4}));
  methods.push_back(std::make_unique<Smf>(SmfOptions{.rank = 3, .period = 4}));
  methods.push_back(std::make_unique<Cphw>(CphwOptions{.rank = 3,
                                                       .period = 4}));
  methods.push_back(std::make_unique<CpWoptStream>(
      CpWoptStreamOptions{.rank = 3, .iterations_per_step = 5}));
  return methods;
}

/// Stream with an empty-Ω step, a full-Ω step, and a run of identical masks
/// (the mask-reuse case) on top of random corruption.
CorruptedStream MakeEdgeCaseStream(const std::vector<DenseTensor>& truth) {
  CorruptedStream stream = Corrupt(truth, {40.0, 10.0, 2.0}, 92);
  EXPECT_GE(truth.size(), 16u);
  stream.masks[9] = Mask(truth[0].shape(), false);  // Empty Ω.
  stream.masks[10] = Mask(truth[0].shape(), true);  // Full Ω.
  stream.masks[12] = stream.masks[11];              // Mask reuse...
  stream.masks[13] = stream.masks[11];              // ...for three steps.
  return stream;
}

TEST(StepResultPipelineTest, LazyEqualsForcedDenseForAllNineMethods) {
  // SOFIA's init window is 3 * period = 12 slices; leave a streamed tail.
  std::vector<DenseTensor> truth = MakeTruth(20, 91);
  CorruptedStream stream = MakeEdgeCaseStream(truth);

  StreamEvalOptions lazy_options;
  lazy_options.max_eval_entries = 8;  // Exercise the strided sampler too.
  StreamEvalOptions dense_options = lazy_options;
  dense_options.force_dense = true;

  std::vector<std::unique_ptr<StreamingMethod>> lazy_owned = MakeAllMethods();
  std::vector<std::unique_ptr<StreamingMethod>> dense_owned = MakeAllMethods();
  std::vector<StreamingMethod*> lazy_methods, dense_methods;
  for (auto& m : lazy_owned) lazy_methods.push_back(m.get());
  for (auto& m : dense_owned) dense_methods.push_back(m.get());
  ASSERT_EQ(lazy_methods.size(), 9u);

  // The lazy run performs zero full-volume reconstructions: the counter
  // must not move while the comparison executes.
  StepResult::ResetMaterializations();
  std::vector<MethodRunResult> lazy =
      RunImputationComparison(lazy_methods, stream, truth, lazy_options);
  EXPECT_EQ(StepResult::materializations(), 0u)
      << "the lazy protocol densified an estimate";

  std::vector<MethodRunResult> dense =
      RunImputationComparison(dense_methods, stream, truth, dense_options);

  ASSERT_EQ(lazy.size(), dense.size());
  for (size_t m = 0; m < lazy.size(); ++m) {
    SCOPED_TRACE(lazy[m].name);
    ASSERT_EQ(lazy[m].run.nre.size(), truth.size());
    ASSERT_EQ(dense[m].run.nre.size(), truth.size());
    for (size_t t = 0; t < truth.size(); ++t) {
      EXPECT_NEAR(lazy[m].run.nre[t], dense[m].run.nre[t], 1e-12)
          << "t=" << t;
      EXPECT_NEAR(lazy[m].run.observed_nre[t], dense[m].run.observed_nre[t],
                  1e-12)
          << "t=" << t;
      EXPECT_NEAR(lazy[m].run.missing_nre[t], dense[m].run.missing_nre[t],
                  1e-12)
          << "t=" << t;
    }
    EXPECT_NEAR(lazy[m].run.rae, dense[m].run.rae, 1e-12);
  }
}

TEST(StepResultPipelineTest, UncappedLazyScoreMatchesLegacyFullVolumeNre) {
  // With max_eval_entries = 0 the scored set is observed ∪ all missing =
  // every entry, so the lazy protocol's per-step NRE equals the legacy
  // dense protocol's full-volume NormalizedResidualError up to summation
  // order (≤ 1e-12) — the equivalence the pipeline bench's legacy-dense
  // comparator rests on.
  std::vector<DenseTensor> truth = MakeTruth(12, 61);
  CorruptedStream stream = Corrupt(truth, {35.0, 5.0, 2.0}, 62);

  OnlineSgd legacy_method(OnlineSgdOptions{.rank = 3});
  StreamRunResult legacy = RunImputation(&legacy_method, stream, truth);

  OnlineSgd lazy_method(OnlineSgdOptions{.rank = 3});
  StreamEvalOptions options;
  options.max_eval_entries = 0;  // Score every missing entry.
  std::vector<StreamingMethod*> methods = {&lazy_method};
  std::vector<MethodRunResult> lazy =
      RunImputationComparison(methods, stream, truth, options);

  ASSERT_EQ(lazy[0].run.nre.size(), legacy.nre.size());
  for (size_t t = 0; t < truth.size(); ++t) {
    EXPECT_NEAR(lazy[0].run.nre[t], legacy.nre[t],
                1e-12 * (1.0 + legacy.nre[t]))
        << "t=" << t;
  }
}

TEST(StepResultPipelineTest, LazyForecastMatchesForcedDense) {
  std::vector<DenseTensor> truth = MakeTruth(24, 71);
  CorruptedStream stream = Corrupt(truth, {20.0, 5.0, 2.0}, 72);

  StreamEvalOptions options;
  options.max_eval_entries = 16;

  // Forecast-capable methods: SOFIA, SMF, CPHW.
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  {
    SofiaStream lazy_method(config);
    SofiaStream dense_method(config);
    StepResult::ResetMaterializations();
    const double lazy_afe = RunForecast(&lazy_method, stream, truth, 4,
                                        options);
    EXPECT_EQ(StepResult::materializations(), 0u);
    StreamEvalOptions forced = options;
    forced.force_dense = true;
    const double dense_afe = RunForecast(&dense_method, stream, truth, 4,
                                         forced);
    EXPECT_NEAR(lazy_afe, dense_afe, 1e-12);
  }
  {
    Smf lazy_method(SmfOptions{.rank = 3, .period = 4});
    Smf dense_method(SmfOptions{.rank = 3, .period = 4});
    StepResult::ResetMaterializations();
    const double lazy_afe = RunForecast(&lazy_method, stream, truth, 4,
                                        options);
    EXPECT_EQ(StepResult::materializations(), 0u);
    StreamEvalOptions forced = options;
    forced.force_dense = true;
    const double dense_afe = RunForecast(&dense_method, stream, truth, 4,
                                         forced);
    EXPECT_EQ(lazy_afe, dense_afe);  // Identical loops: identical bits.
  }
}

TEST(StepResultPipelineTest, SofiaAdoptsSharedPatternWithoutBuilding) {
  // With the shared_ptr pattern cache, SOFIA steps driven through the
  // comparison runner never build a CooList themselves.
  std::vector<DenseTensor> truth = MakeTruth(16, 51);
  CorruptedStream stream = Corrupt(truth, {30.0, 5.0, 2.0}, 52);

  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  SofiaStream method(config);
  std::vector<StreamingMethod*> methods = {&method};
  RunImputationComparison(methods, stream, truth);
  EXPECT_EQ(method.model().step_pattern_builds(), 0u)
      << "SOFIA rebuilt a pattern the runner already built";
}

TEST(StepResultPipelineTest, SharedPatternSurvivesMaskReuseSteps) {
  // Identical consecutive masks: the runner builds once, every method
  // (including SOFIA's internal cache) reuses, and scores still match the
  // forced-dense route.
  std::vector<DenseTensor> truth = MakeTruth(10, 31);
  CorruptedStream stream = Corrupt(truth, {50.0, 0.0, 0.0}, 32);
  for (size_t t = 1; t < stream.masks.size(); ++t) {
    stream.masks[t] = stream.masks[0];  // One fixed outage mask throughout.
  }

  OnlineSgd lazy_method(OnlineSgdOptions{.rank = 3});
  OnlineSgd dense_method(OnlineSgdOptions{.rank = 3});
  std::vector<StreamingMethod*> lazy_methods = {&lazy_method};
  std::vector<StreamingMethod*> dense_methods = {&dense_method};
  StreamEvalOptions dense_options;
  dense_options.force_dense = true;
  std::vector<MethodRunResult> lazy =
      RunImputationComparison(lazy_methods, stream, truth);
  std::vector<MethodRunResult> dense = RunImputationComparison(
      dense_methods, stream, truth, dense_options);
  for (size_t t = 0; t < truth.size(); ++t) {
    EXPECT_EQ(lazy[0].run.nre[t], dense[0].run.nre[t]) << "t=" << t;
  }
}

}  // namespace
}  // namespace sofia
