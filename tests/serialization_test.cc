#include <gtest/gtest.h>

#include <sstream>

#include "core/sofia_model.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"

namespace sofia {
namespace {

struct Fixture {
  std::vector<DenseTensor> truth;
  CorruptedStream stream;
  SofiaConfig config;
  SofiaModel model;
};

Fixture MakeFixture(uint64_t seed) {
  SofiaConfig config;
  config.rank = 3;
  config.period = 6;
  config.init_seasons = 3;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.seed = seed;
  config.max_init_iterations = 8;
  SyntheticTensor syn = MakeSinusoidTensor(7, 5, 60, 3, 6, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < 60; ++t) truth.push_back(syn.tensor.SliceLastMode(t));
  CorruptedStream stream = Corrupt(truth, {20.0, 10.0, 3.0}, seed + 1);
  const size_t w = config.InitWindow();
  std::vector<DenseTensor> is(stream.slices.begin(),
                              stream.slices.begin() + w);
  std::vector<Mask> im(stream.masks.begin(), stream.masks.begin() + w);
  SofiaModel model = SofiaModel::Initialize(is, im, config);
  return {std::move(truth), std::move(stream), config, std::move(model)};
}

TEST(SerializationTest, RoundtripPreservesForecasts) {
  Fixture f = MakeFixture(61);
  // Advance a few steps so the state is no longer the fresh init.
  for (size_t t = f.config.InitWindow(); t < 30; ++t) {
    f.model.Step(f.stream.slices[t], f.stream.masks[t]);
  }
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);
  for (size_t h = 1; h <= 2 * f.config.period; ++h) {
    DenseTensor a = f.model.Forecast(h);
    DenseTensor b = restored.Forecast(h);
    DenseTensor diff = a - b;
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0) << "h=" << h;
  }
}

TEST(SerializationTest, RestoredModelContinuesStreamIdentically) {
  Fixture f = MakeFixture(63);
  const size_t w = f.config.InitWindow();
  for (size_t t = w; t < 28; ++t) {
    f.model.Step(f.stream.slices[t], f.stream.masks[t]);
  }
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);

  // Bit-for-bit identical stepping after restore.
  for (size_t t = 28; t < 40; ++t) {
    SofiaStepResult a = f.model.Step(f.stream.slices[t], f.stream.masks[t]);
    SofiaStepResult b = restored.Step(f.stream.slices[t], f.stream.masks[t]);
    DenseTensor diff = a.imputed - b.imputed;
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0) << "t=" << t;
    DenseTensor odiff = a.outliers - b.outliers;
    EXPECT_DOUBLE_EQ(odiff.FrobeniusNorm(), 0.0) << "t=" << t;
  }
}

TEST(SerializationTest, PreservesConfigAndHwState) {
  Fixture f = MakeFixture(65);
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);
  EXPECT_EQ(restored.config().rank, f.config.rank);
  EXPECT_EQ(restored.config().period, f.config.period);
  EXPECT_EQ(restored.level(), f.model.level());
  EXPECT_EQ(restored.trend(), f.model.trend());
  EXPECT_EQ(restored.last_temporal_row(), f.model.last_temporal_row());
  for (size_t r = 0; r < f.config.rank; ++r) {
    EXPECT_DOUBLE_EQ(restored.hw_params()[r].alpha,
                     f.model.hw_params()[r].alpha);
  }
}

TEST(SerializationTest, RejectsGarbageInput) {
  std::stringstream buffer("not a checkpoint at all");
  EXPECT_DEATH(SofiaModel::Deserialize(buffer), "checkpoint|sofia-model");
}

}  // namespace
}  // namespace sofia
