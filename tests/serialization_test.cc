#include <gtest/gtest.h>

#include <sstream>

#include "core/sofia_model.hpp"
#include "data/corruption.hpp"
#include "util/state_io.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"

namespace sofia {
namespace {

struct Fixture {
  std::vector<DenseTensor> truth;
  CorruptedStream stream;
  SofiaConfig config;
  SofiaModel model;
};

Fixture MakeFixture(uint64_t seed) {
  SofiaConfig config;
  config.rank = 3;
  config.period = 6;
  config.init_seasons = 3;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.seed = seed;
  config.max_init_iterations = 8;
  SyntheticTensor syn = MakeSinusoidTensor(7, 5, 60, 3, 6, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < 60; ++t) truth.push_back(syn.tensor.SliceLastMode(t));
  CorruptedStream stream = Corrupt(truth, {20.0, 10.0, 3.0}, seed + 1);
  const size_t w = config.InitWindow();
  std::vector<DenseTensor> is(stream.slices.begin(),
                              stream.slices.begin() + w);
  std::vector<Mask> im(stream.masks.begin(), stream.masks.begin() + w);
  SofiaModel model = SofiaModel::Initialize(is, im, config);
  return {std::move(truth), std::move(stream), config, std::move(model)};
}

TEST(SerializationTest, RoundtripPreservesForecasts) {
  Fixture f = MakeFixture(61);
  // Advance a few steps so the state is no longer the fresh init.
  for (size_t t = f.config.InitWindow(); t < 30; ++t) {
    f.model.Step(f.stream.slices[t], f.stream.masks[t]);
  }
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);
  for (size_t h = 1; h <= 2 * f.config.period; ++h) {
    DenseTensor a = f.model.Forecast(h);
    DenseTensor b = restored.Forecast(h);
    DenseTensor diff = a - b;
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0) << "h=" << h;
  }
}

TEST(SerializationTest, RestoredModelContinuesStreamIdentically) {
  Fixture f = MakeFixture(63);
  const size_t w = f.config.InitWindow();
  for (size_t t = w; t < 28; ++t) {
    f.model.Step(f.stream.slices[t], f.stream.masks[t]);
  }
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);

  // Bit-for-bit identical stepping after restore.
  for (size_t t = 28; t < 40; ++t) {
    SofiaStepResult a = f.model.Step(f.stream.slices[t], f.stream.masks[t]);
    SofiaStepResult b = restored.Step(f.stream.slices[t], f.stream.masks[t]);
    DenseTensor diff = a.imputed() - b.imputed();
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0) << "t=" << t;
    DenseTensor odiff = a.outliers() - b.outliers();
    EXPECT_DOUBLE_EQ(odiff.FrobeniusNorm(), 0.0) << "t=" << t;
  }
}

TEST(SerializationTest, RoundtripAfterRingWraparound) {
  // Step past a full period so the seasonal ring (season_pos_), the
  // temporal-row ring (row_pos_/row_history_), and the error-scale tensor
  // all hold genuinely streamed state — freshly-initialized models leave
  // those at their seed values.
  Fixture f = MakeFixture(67);
  const size_t w = f.config.InitWindow();
  const size_t m = f.config.period;
  for (size_t t = w; t < w + m + 3; ++t) {
    f.model.Step(f.stream.slices[t], f.stream.masks[t]);
  }
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);

  // season_pos_ alignment: the next seasonal component must be the same slot.
  EXPECT_EQ(restored.next_season(), f.model.next_season());
  EXPECT_EQ(restored.level(), f.model.level());
  EXPECT_EQ(restored.trend(), f.model.trend());
  EXPECT_EQ(restored.last_temporal_row(), f.model.last_temporal_row());
  // sigma_ round-trips exactly (max_digits10 text encoding).
  DenseTensor sdiff = restored.error_scale() - f.model.error_scale();
  EXPECT_DOUBLE_EQ(sdiff.FrobeniusNorm(), 0.0);

  // row_history_/row_pos_ feed the λ2 seasonal coupling of Eq. (25): over
  // the next full period every ring slot is consumed, so bitwise-identical
  // stepping proves the whole ring (and its rotation) round-tripped.
  for (size_t t = w + m + 3; t < w + 2 * m + 4; ++t) {
    SofiaStepResult a = f.model.Step(f.stream.slices[t], f.stream.masks[t]);
    SofiaStepResult b = restored.Step(f.stream.slices[t], f.stream.masks[t]);
    DenseTensor idiff = a.imputed() - b.imputed();
    EXPECT_DOUBLE_EQ(idiff.FrobeniusNorm(), 0.0) << "t=" << t;
    DenseTensor fdiff = a.forecast() - b.forecast();
    EXPECT_DOUBLE_EQ(fdiff.FrobeniusNorm(), 0.0) << "t=" << t;
    EXPECT_EQ(a.observed_outliers(), b.observed_outliers()) << "t=" << t;
    EXPECT_EQ(restored.next_season(), f.model.next_season()) << "t=" << t;
    EXPECT_EQ(restored.last_temporal_row(), f.model.last_temporal_row())
        << "t=" << t;
  }
}

TEST(SerializationTest, PreservesConfigAndHwState) {
  Fixture f = MakeFixture(65);
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);
  EXPECT_EQ(restored.config().rank, f.config.rank);
  EXPECT_EQ(restored.config().period, f.config.period);
  EXPECT_EQ(restored.level(), f.model.level());
  EXPECT_EQ(restored.trend(), f.model.trend());
  EXPECT_EQ(restored.last_temporal_row(), f.model.last_temporal_row());
  for (size_t r = 0; r < f.config.rank; ++r) {
    EXPECT_DOUBLE_EQ(restored.hw_params()[r].alpha,
                     f.model.hw_params()[r].alpha);
  }
}

TEST(SerializationTest, KernelPathKnobsRoundTrip) {
  // Step's summation order differs between the kernel paths at the ulp
  // level, so the selected path must survive a checkpoint for the restored
  // model to continue the stream bit-for-bit. num_threads is deliberately
  // runtime-only: results are thread-count invariant and the worker count
  // belongs to the restoring machine.
  Fixture f = MakeFixture(69);
  f.model.set_use_sparse_kernels(false);
  f.model.set_num_threads(3);
  std::stringstream buffer;
  f.model.Serialize(buffer);
  SofiaModel restored = SofiaModel::Deserialize(buffer);
  EXPECT_FALSE(restored.config().use_sparse_kernels);
  EXPECT_TRUE(restored.config().reuse_step_pattern);
  EXPECT_EQ(restored.config().num_threads, 0u);
}

TEST(SerializationTest, RejectsGarbageInput) {
  // Garbage bytes throw state_io::StateError (the durability layer's
  // snapshot fallback relies on this) — never abort, never a partial model.
  std::stringstream buffer("not a checkpoint at all");
  EXPECT_THROW(SofiaModel::Deserialize(buffer), state_io::StateError);
}

}  // namespace
}  // namespace sofia
