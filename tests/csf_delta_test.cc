// The incremental-CSF subsystem (CsfTensor::BuildDelta) and the per-tree
// auto-leaf builds:
//  - a patched tensor is structurally IDENTICAL (EXPECT_EQ on every
//    level_mode / ids / ptr / record array) to a fresh Build of the new
//    pattern with the same level orders — for default-order trees, for
//    auto-leaf custom-order trees, and when root slices appear, disappear,
//    or the pattern goes to/from empty;
//  - churn above the threshold makes BuildDelta refuse (returning false
//    and leaving the output untouched) so callers fall back to Build;
//  - the EnsureCsfDelta / BindCsf routing layers actually take the patch
//    path on low-churn pattern changes and the full-build path otherwise,
//    pinned through the csf::GetBuildStats counters;
//  - auto-leaf trees give the same kernel results as default trees to
//    ≤1e-12 (the level order only regroups each record's Hadamard chain).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/pattern_storage.hpp"
#include "tensor/shape.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

/// Restores the process-wide auto-leaf knob on scope exit (csf_test pins
/// the legacy tree structure, so the default must never leak).
struct AutoLeafGuard {
  bool prev = csf::AutoLeaf();
  ~AutoLeafGuard() { csf::SetAutoLeaf(prev); }
};

std::vector<size_t> RandomSortedIndices(const Shape& shape, double density,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> idx;
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    if (rng.Bernoulli(density)) idx.push_back(k);
  }
  return idx;
}

/// Mutate a sorted index set: drop every `drop_stride`-th entry and add the
/// smallest `add` absent indices ≥ `add_from`. Returns a sorted set.
std::vector<size_t> Mutate(const std::vector<size_t>& base, const Shape& shape,
                           size_t drop_stride, size_t add, size_t add_from) {
  std::vector<size_t> out;
  for (size_t k = 0; k < base.size(); ++k) {
    if (drop_stride == 0 || k % drop_stride != 0) out.push_back(base[k]);
  }
  for (size_t lin = add_from; add > 0 && lin < shape.NumElements(); ++lin) {
    if (!std::binary_search(base.begin(), base.end(), lin)) {
      out.push_back(lin);
      --add;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ExpectTreesEqual(const CsfTensor& a, const CsfTensor& b) {
  ASSERT_EQ(a.order(), b.order());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (size_t mode = 0; mode < a.order(); ++mode) {
    const CsfTree& ta = a.tree(mode);
    const CsfTree& tb = b.tree(mode);
    EXPECT_EQ(ta.root_mode, tb.root_mode) << "mode " << mode;
    EXPECT_EQ(ta.level_mode, tb.level_mode) << "mode " << mode;
    EXPECT_EQ(ta.ids, tb.ids) << "mode " << mode;
    EXPECT_EQ(ta.ptr, tb.ptr) << "mode " << mode;
    EXPECT_EQ(ta.record, tb.record) << "mode " << mode;
  }
}

/// BuildDelta must produce the fresh build bit-for-bit; wraps the triple.
void ExpectDeltaMatchesFresh(const std::vector<size_t>& old_idx,
                             const std::vector<size_t>& new_idx,
                             const Shape& shape, double max_churn) {
  CooList old_coo = CooList::FromIndices(shape, old_idx);
  CooList new_coo = CooList::FromIndices(shape, new_idx);
  CsfTensor old_csf = CsfTensor::Build(old_coo);
  CsfTensor patched;
  ASSERT_TRUE(
      CsfTensor::BuildDelta(old_csf, old_coo, new_coo, max_churn, &patched));
  ExpectTreesEqual(patched, CsfTensor::Build(new_coo));
}

// ------------------------------------------------------ structural parity

TEST(CsfDeltaTest, PatchedTreesMatchFreshBuildOnRandomMutations) {
  for (const Shape& shape :
       {Shape({6, 5, 4}), Shape({5, 4, 3, 2}), Shape({9, 1, 3})}) {
    std::vector<size_t> base = RandomSortedIndices(shape, 0.4, 11);
    if (base.size() < 8) continue;
    // Drop ~1/16 of the records and add about as many fresh ones:
    // bursty-outage churn, well under the default 0.25 threshold even on
    // the tiny shapes.
    std::vector<size_t> mutated = Mutate(base, shape, 16, base.size() / 16, 0);
    ExpectDeltaMatchesFresh(base, mutated, shape, csf::DeltaMaxChurn());
    // The reverse direction patches too (adds become removes).
    ExpectDeltaMatchesFresh(mutated, base, shape, csf::DeltaMaxChurn());
  }
}

TEST(CsfDeltaTest, RootSlicesAppearAndDisappear) {
  // Shape (4,3,2), linear = i0 + 4 i1 + 12 i2. Old pattern populates only
  // root slices i0 ∈ {0, 2} of mode 0; the new one empties i0 == 2 and
  // opens the previously-empty i0 == 3 — every tree sees roots vanish,
  // survive untouched, and appear.
  Shape shape({4, 3, 2});
  std::vector<size_t> old_idx;
  for (size_t i2 = 0; i2 < 2; ++i2) {
    for (size_t i1 = 0; i1 < 3; ++i1) {
      for (size_t i0 : {size_t{0}, size_t{2}}) {
        old_idx.push_back(i0 + 4 * i1 + 12 * i2);
      }
    }
  }
  std::sort(old_idx.begin(), old_idx.end());
  std::vector<size_t> new_idx;
  for (size_t lin : old_idx) {
    if (lin % 4 != 2) new_idx.push_back(lin);  // Drop every i0 == 2 record.
  }
  new_idx.push_back(3 + 4 * 0 + 12 * 0);  // (3,0,0)
  new_idx.push_back(3 + 4 * 2 + 12 * 1);  // (3,2,1)
  std::sort(new_idx.begin(), new_idx.end());
  ExpectDeltaMatchesFresh(old_idx, new_idx, shape, 1.0);
}

TEST(CsfDeltaTest, EmptyPatternsPatchBothWays) {
  Shape shape({5, 4, 3});
  std::vector<size_t> some = RandomSortedIndices(shape, 0.3, 21);
  ASSERT_FALSE(some.empty());
  // Everything added / everything removed is churn 1.0 — legal when the
  // caller allows it, and the patched trees still match the fresh builds.
  ExpectDeltaMatchesFresh({}, some, shape, 1.0);
  ExpectDeltaMatchesFresh(some, {}, shape, 1.0);
}

// ------------------------------------------------------- churn threshold

TEST(CsfDeltaTest, ChurnAboveThresholdRefusesToPatch) {
  Shape shape({6, 5, 4});
  std::vector<size_t> base = RandomSortedIndices(shape, 0.4, 31);
  ASSERT_GE(base.size(), 10u);
  // Drop every other record: churn = removed / max(old, new) ≥ 0.5.
  std::vector<size_t> mutated = Mutate(base, shape, 2, 0, 0);
  CooList old_coo = CooList::FromIndices(shape, base);
  CooList new_coo = CooList::FromIndices(shape, mutated);
  CsfTensor old_csf = CsfTensor::Build(old_coo);
  CsfTensor out;
  EXPECT_FALSE(CsfTensor::BuildDelta(old_csf, old_coo, new_coo,
                                     csf::DeltaMaxChurn(), &out));
  EXPECT_EQ(out.order(), 0u);  // Refusal leaves the output untouched.
  // The same pair patches fine once the caller raises the ceiling.
  ASSERT_TRUE(CsfTensor::BuildDelta(old_csf, old_coo, new_coo, 1.0, &out));
  ExpectTreesEqual(out, CsfTensor::Build(new_coo));
}

TEST(CsfDeltaTest, ChurnKnobRoundTrips) {
  double prev = csf::DeltaMaxChurn();
  csf::SetDeltaMaxChurn(0.1);
  EXPECT_DOUBLE_EQ(csf::DeltaMaxChurn(), 0.1);
  csf::SetDeltaMaxChurn(prev);
  EXPECT_DOUBLE_EQ(csf::DeltaMaxChurn(), prev);
}

// ----------------------------------------------------- auto-leaf builds

/// Grid pattern on shape (2, 5, 12): i2 ∈ [0, 10) fully crossed with all
/// (i0, i1). Distinct-fiber counts are exact — D(¬2) = 10 < D(¬1) ≈ 20 <
/// D(¬0) ≈ 50 — so every tree's auto leaf choice is deterministic and
/// stable under the small mutations below.
std::vector<size_t> GridIndices() {
  std::vector<size_t> idx;
  for (size_t i2 = 0; i2 < 10; ++i2) {
    for (size_t i1 = 0; i1 < 5; ++i1) {
      for (size_t i0 = 0; i0 < 2; ++i0) {
        idx.push_back(i0 + 2 * i1 + 10 * i2);
      }
    }
  }
  return idx;
}

TEST(CsfAutoLeafTest, AutoLeafTreesPickTheFewestFiberLeafPerTree) {
  Shape shape({2, 5, 12});
  CooList coo = CooList::FromIndices(shape, GridIndices());
  CsfTensor t = CsfTensor::Build(coo, /*auto_leaf=*/true);
  // Trees 0 and 1 put mode 2 deepest (10 distinct (i0,i1) parents beats
  // both alternatives); tree 2 cannot use its own root and picks mode 1.
  EXPECT_EQ(t.tree(0).level_mode, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(t.tree(1).level_mode, (std::vector<size_t>{1, 0, 2}));
  EXPECT_EQ(t.tree(2).level_mode, (std::vector<size_t>{2, 0, 1}));
  // The default build keeps the descending-mode legacy order.
  CsfTensor d = CsfTensor::Build(coo, /*auto_leaf=*/false);
  EXPECT_EQ(d.tree(0).level_mode, (std::vector<size_t>{0, 2, 1}));
  EXPECT_EQ(d.tree(1).level_mode, (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(d.tree(2).level_mode, (std::vector<size_t>{2, 1, 0}));
}

TEST(CsfAutoLeafTest, AutoLeafKernelsMatchDefaultOrderKernels) {
  Shape shape({2, 5, 12});
  CooList coo = CooList::FromIndices(shape, GridIndices());
  CsfTensor auto_t = CsfTensor::Build(coo, /*auto_leaf=*/true);
  CsfTensor def_t = CsfTensor::Build(coo, /*auto_leaf=*/false);
  Rng rng(41);
  size_t rank = 4;
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::Random(shape.dim(n), rank, rng, -1.0, 1.0));
  }
  std::vector<double> values(coo.nnz());
  for (double& v : values) v = rng.Uniform(-2.0, 2.0);
  std::vector<double> temporal_row(rank);
  for (double& w : temporal_row) w = rng.Uniform(-1.0, 1.0);

  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix a = CsfMttkrp(auto_t, values, factors, mode);
    Matrix b = CsfMttkrp(def_t, values, factors, mode);
    // Level order only regroups each record's Hadamard chain.
    EXPECT_LE(a.MaxAbsDiff(b), 1e-12) << "mode " << mode;
  }
  StepGradients ga = CsfStepGradients(auto_t, values, factors, temporal_row);
  StepGradients gb = CsfStepGradients(def_t, values, factors, temporal_row);
  for (size_t n = 0; n < shape.order(); ++n) {
    EXPECT_LE(ga.row_grads[n].MaxAbsDiff(gb.row_grads[n]), 1e-12);
  }
  for (size_t r = 0; r < rank; ++r) {
    EXPECT_NEAR(ga.temporal_grad[r], gb.temporal_grad[r], 1e-12);
  }
  std::vector<double> ka = CsfKruskalGather(auto_t, factors, temporal_row);
  std::vector<double> kb = CsfKruskalGather(def_t, factors, temporal_row);
  ASSERT_EQ(ka.size(), kb.size());
  for (size_t k = 0; k < ka.size(); ++k) {
    EXPECT_NEAR(ka[k], kb[k], 1e-12) << "record " << k;
  }
}

TEST(CsfAutoLeafTest, DeltaPreservesCustomLevelOrders) {
  // BuildDelta keeps each tree's stored level order, so patching an
  // auto-leaf tensor reproduces a fresh auto-leaf build of the new
  // pattern (the grid's distinct-fiber ordering is stable under this
  // mutation, so the fresh build picks the same leaves).
  AutoLeafGuard guard;
  csf::SetAutoLeaf(true);
  Shape shape({2, 5, 12});
  std::vector<size_t> base = GridIndices();
  // Drop 4 grid records, add 6 in the previously-empty i2 ∈ {10, 11} band.
  std::vector<size_t> mutated = Mutate(base, shape, 25, 6, 10 * 10);
  ExpectDeltaMatchesFresh(base, mutated, shape, csf::DeltaMaxChurn());
}

// ------------------------------------------------------- routing + stats

TEST(CsfDeltaRoutingTest, EnsureCsfDeltaPatchesForwardAndFallsBack) {
  Shape shape({6, 5, 4});
  std::vector<size_t> base = RandomSortedIndices(shape, 0.4, 51);
  std::vector<size_t> low_churn = Mutate(base, shape, 10, 2, 0);
  std::vector<size_t> high_churn = Mutate(base, shape, 2, 20, 0);

  csf::ResetBuildStats();
  auto a = std::make_shared<CooList>(CooList::FromIndices(shape, base));
  std::shared_ptr<const CsfTensor> ta = EnsureCsfShared(*a);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 1u);
  EXPECT_EQ(csf::GetBuildStats().delta_builds, 0u);

  // Low churn: the new pattern's attachment is patched from `a`'s trees.
  auto b = std::make_shared<CooList>(CooList::FromIndices(shape, low_churn));
  std::shared_ptr<const CsfTensor> tb = EnsureCsfDelta(*b, a);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 1u);
  EXPECT_EQ(csf::GetBuildStats().delta_builds, 1u);
  EXPECT_EQ(b->csf().get(), tb.get());
  ExpectTreesEqual(*tb, CsfTensor::Build(*b));

  // Already attached: a second call is a no-op on the counters.
  std::shared_ptr<const CsfTensor> tb2 = EnsureCsfDelta(*b, a);
  EXPECT_EQ(tb2.get(), tb.get());
  EXPECT_EQ(csf::GetBuildStats().delta_builds, 1u);

  // High churn degrades to a full build; so does a null previous pattern.
  csf::ResetBuildStats();
  auto c = std::make_shared<CooList>(CooList::FromIndices(shape, high_churn));
  EnsureCsfDelta(*c, a);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 1u);
  EXPECT_EQ(csf::GetBuildStats().delta_builds, 0u);
  auto d = std::make_shared<CooList>(CooList::FromIndices(shape, low_churn));
  EnsureCsfDelta(*d, nullptr);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 2u);
  EXPECT_EQ(csf::GetBuildStats().delta_builds, 0u);
}

TEST(CsfDeltaRoutingTest, BindCsfPatchesThePrivateCacheForward) {
  Shape shape({6, 5, 4});
  std::vector<size_t> base = RandomSortedIndices(shape, 0.4, 61);
  std::vector<size_t> low_churn = Mutate(base, shape, 10, 2, 0);

  auto a = std::make_shared<CooList>(CooList::FromIndices(shape, base));
  auto b = std::make_shared<CooList>(CooList::FromIndices(shape, low_churn));
  std::shared_ptr<const CsfTensor> cache;
  std::shared_ptr<const CooList> source;

  csf::ResetBuildStats();
  const CsfTensor* t1 = BindCsf(a, PatternStorage::kCsf, &cache, &source);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 1u);
  // Same pattern again: the private cache is keyed on pointer identity.
  EXPECT_EQ(BindCsf(a, PatternStorage::kCsf, &cache, &source), t1);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 1u);
  // New low-churn pattern: the cache is patched forward, not recompiled.
  const CsfTensor* t2 = BindCsf(b, PatternStorage::kCsf, &cache, &source);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(csf::GetBuildStats().full_builds, 1u);
  EXPECT_EQ(csf::GetBuildStats().delta_builds, 1u);
  ExpectTreesEqual(*t2, CsfTensor::Build(*b));
  // The private copy never leaks onto the (possibly shared) CooList.
  EXPECT_EQ(b->csf(), nullptr);
  // The COO backend binds nothing.
  std::shared_ptr<const CsfTensor> coo_cache;
  std::shared_ptr<const CooList> coo_source;
  EXPECT_EQ(BindCsf(a, PatternStorage::kCoo, &coo_cache, &coo_source),
            nullptr);
}

}  // namespace
}  // namespace sofia
