// Observability-subsystem contract tests (src/obs/):
//  - sharded counters are *exact* under concurrency: the aggregated value
//    equals the sum of every Add() issued from ShardExecutor workers;
//  - log-linear histogram percentiles land within the documented 12.5%
//    relative bucket width of the exact order statistics of a sorted
//    reference;
//  - a trace session produces well-formed Chrome trace JSON: named thread
//    tracks, complete events with per-track monotonic completion
//    timestamps (pinned via obs::CheckTrace on the parsed file);
//  - metric collection does not perturb results: a guarded comparison run
//    scores bitwise identically with obs enabled and disabled;
//  - stats snapshot lines are parseable JSON carrying the registry
//    sections, and the report checks accept/reject the right snapshots.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_runner.hpp"
#include "obs/json_lite.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"
#include "util/shard_executor.hpp"

namespace sofia {
namespace obs {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

/// Restores the master switch (tests flip it) and scrubs the registry.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Global().ResetAllForTest();
  }
  void TearDown() override {
    SetEnabled(true);
    if (TraceActive()) TraceAbort();
  }
};

TEST_F(ObsTest, CounterIsExactUnderConcurrentAdds) {
  Counter* counter = Registry::Global().FindOrCreateCounter("test.exact");
  counter->Reset();
  constexpr size_t kTasks = 64;
  constexpr size_t kAddsPerTask = 10000;
  ShardExecutor executor(8);
  // Two rounds so worker threads re-use their sticky shard slots.
  for (int round = 0; round < 2; ++round) {
    executor.Run(kTasks, [&](size_t task) {
      for (size_t i = 0; i < kAddsPerTask; ++i) counter->Add(1);
      counter->Add(task);  // Distinct increments, not just 1s.
    });
  }
  const uint64_t expected =
      2 * (kTasks * kAddsPerTask + kTasks * (kTasks - 1) / 2);
  EXPECT_EQ(counter->Value(), expected);
}

TEST_F(ObsTest, CounterDisabledDropsAdds) {
  Counter* counter = Registry::Global().FindOrCreateCounter("test.disabled");
  counter->Reset();
  counter->Add(5);
  SetEnabled(false);
  counter->Add(1000);
  SetEnabled(true);
  counter->Add(2);
  EXPECT_EQ(counter->Value(), 7u);
}

TEST_F(ObsTest, HistogramPercentilesTrackSortedReference) {
  Histogram histogram;
  // Log-uniform latencies across five decades — every value range the
  // log-linear buckets must stay within 12.5% on.
  Rng rng(17);
  std::vector<double> values;
  for (size_t i = 0; i < 20000; ++i) {
    const double exponent = 5.0 * rng.Uniform();
    values.push_back(std::pow(10.0, exponent));
  }
  for (double v : values) histogram.Observe(v);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(histogram.Count(), values.size());
  for (double q : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(std::ceil(q / 100.0 * values.size())));
    const double exact = values[rank];
    const double approx = histogram.Percentile(q);
    EXPECT_NEAR(approx, exact, 0.125 * exact) << "q=" << q;
  }
}

TEST_F(ObsTest, HistogramIsExactUnderConcurrentObserves) {
  Histogram* histogram =
      Registry::Global().FindOrCreateHistogram("test.concurrent_us");
  histogram->Reset();
  constexpr size_t kTasks = 32;
  constexpr size_t kPerTask = 2000;
  ShardExecutor executor(8);
  executor.Run(kTasks, [&](size_t task) {
    for (size_t i = 0; i < kPerTask; ++i) {
      histogram->Observe(static_cast<double>(task * kPerTask + i));
    }
  });
  EXPECT_EQ(histogram->Count(), kTasks * kPerTask);
  std::vector<uint64_t> buckets;
  histogram->SnapshotBuckets(&buckets);
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  EXPECT_EQ(total, kTasks * kPerTask);
}

TEST_F(ObsTest, TraceProducesValidChromeJson) {
  const std::string path = TempPath("obs_test_trace.json");
  // Spawn the workers before the session so their startup cost is not an
  // uncovered hole in the driver track.
  ShardExecutor executor(4);
  ASSERT_TRUE(TraceStart());
  EXPECT_FALSE(TraceStart());  // One session at a time.
  SetThreadName("driver");
  Counter* accum = Registry::Global().FindOrCreateCounter("time.test.span_us");
  {
    ObsSpan outer("test.outer", accum, 7, "slice");
    for (int i = 0; i < 5; ++i) {
      ObsSpan inner("test.inner");
      (void)inner;
    }
    // Spans from executor workers land on their own named tracks; the
    // enclosing driver span keeps the driver track's extent fully covered.
    executor.Run(8, [&](size_t task) {
      ObsSpan span("test.worker_task", nullptr, task, "task");
      (void)span;
    });
  }
  size_t events = 0, dropped = 0;
  ASSERT_TRUE(TraceStopAndWrite(path, &events, &dropped));
  EXPECT_GE(events, 6u);
  EXPECT_EQ(dropped, 0u);

  std::string body, error;
  ASSERT_TRUE(ReadFileToString(path, &body, &error)) << error;
  JsonValue trace;
  ASSERT_TRUE(ParseJson(body, &trace, &error)) << error;
  TraceStats stats;
  const CheckResult check = CheckTrace(trace, &stats);
  EXPECT_TRUE(check.ok) << (check.problems.empty() ? ""
                                                   : check.problems[0]);
  EXPECT_EQ(stats.events, events);
  EXPECT_GE(stats.tracks, 1u);
  // The driver's metadata record must have named its track.
  bool saw_driver = false;
  const JsonValue* trace_events = trace.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  for (const JsonValue& event : trace_events->array) {
    if (event.StringOr("ph", "") == "M" &&
        event.StringOr("name", "") == "thread_name") {
      const JsonValue* args = event.Find("args");
      if (args != nullptr && args->StringOr("name", "") == "driver") {
        saw_driver = true;
      }
    }
  }
  EXPECT_TRUE(saw_driver);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceRingDropsInsteadOfWrapping) {
  TraceOptions options;
  options.capacity = 16;
  ASSERT_TRUE(TraceStart(options));
  for (int i = 0; i < 100; ++i) {
    TraceRecord("test.flood", NowNs(), 10, 0, nullptr);
  }
  const std::string path = TempPath("obs_test_trace_drop.json");
  size_t events = 0, dropped = 0;
  ASSERT_TRUE(TraceStopAndWrite(path, &events, &dropped));
  EXPECT_EQ(events, 16u);
  EXPECT_EQ(dropped, 84u);
  std::remove(path.c_str());
}

TEST_F(ObsTest, StatsLinesAreParseableSnapshots) {
  Registry::Global().FindOrCreateCounter("test.stats_counter")->Add(3);
  Registry::Global().FindOrCreateGauge("test.stats_gauge")->Set(2.5);
  Registry::Global()
      .FindOrCreateHistogram("test.stats_us")
      ->Observe(123.0);
  const std::string path = TempPath("obs_test_stats.jsonl");
  std::remove(path.c_str());
  ConfigureStats(path, 2);
  for (int i = 0; i < 5; ++i) StatsTick();  // Emits at ticks 2 and 4.
  FlushStats();                             // Plus the final line.

  std::string body, error;
  ASSERT_TRUE(ReadFileToString(path, &body, &error)) << error;
  size_t lines = 0;
  size_t begin = 0;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    ++lines;
    JsonValue snapshot;
    ASSERT_TRUE(ParseJson(line, &snapshot, &error)) << error;
    const CheckResult check = CheckMetricsSnapshot(snapshot);
    EXPECT_TRUE(check.ok) << (check.problems.empty() ? ""
                                                     : check.problems[0]);
    const JsonValue* counters = snapshot.Find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(counters->NumberOr("test.stats_counter", 0.0), 3.0);
    const JsonValue* histograms = snapshot.Find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue* h = histograms->Find("test.stats_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->NumberOr("count", 0.0), 1.0);
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST_F(ObsTest, JsonLiteParsesAndRejects) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\"\n"}, "d": true, "e": null})",
      &value, &error))
      << error;
  ASSERT_TRUE(value.is_object());
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -300.0);
  const JsonValue* b = value.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->StringOr("c", ""), "x\"\n");
  EXPECT_TRUE(value.Find("e") != nullptr);
  EXPECT_EQ(value.Find("missing"), nullptr);

  EXPECT_FALSE(ParseJson("{\"a\": }", &value, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &value, &error));
  EXPECT_FALSE(ParseJson("", &value, &error));

  // JSONL: the last non-empty line wins.
  EXPECT_TRUE(ParseLastJsonLine("{\"n\": 1}\n{\"n\": 2}\n\n", &value,
                                &error))
      << error;
  EXPECT_EQ(value.NumberOr("n", 0.0), 2.0);
}

TEST_F(ObsTest, ReportChecksCoverageBounds) {
  const char* good = R"({"counters": {
    "time.pipeline.wall_us": 1000, "time.pipeline.init_us": 100,
    "time.pipeline.ingest_us": 100, "time.pipeline.stall_us": 100,
    "time.pipeline.compute_us": 500, "time.pipeline.score_us": 150,
    "time.pipeline.ingest_async_us": 400},
    "gauges": {}, "histograms": {}})";
  JsonValue snapshot;
  std::string error;
  ASSERT_TRUE(ParseJson(good, &snapshot, &error)) << error;
  EXPECT_TRUE(CheckMetricsSnapshot(snapshot).ok);
  const AttributionReport attribution = TimeAttribution(snapshot);
  EXPECT_EQ(attribution.wall_us, 1000.0);
  // ingest_async overlaps on the aux lane: listed as a row, excluded from
  // driver coverage.
  EXPECT_NEAR(attribution.driver_coverage, 0.95, 1e-9);
  ASSERT_FALSE(attribution.rows.empty());
  EXPECT_EQ(attribution.rows[0].stage, "pipeline.compute");
  for (size_t i = 1; i < attribution.rows.size(); ++i) {
    EXPECT_LE(attribution.rows[i].us, attribution.rows[i - 1].us);
  }

  const char* sparse = R"({"counters": {
    "time.pipeline.wall_us": 1000, "time.pipeline.compute_us": 200},
    "gauges": {}, "histograms": {}})";
  ASSERT_TRUE(ParseJson(sparse, &snapshot, &error)) << error;
  const CheckResult low = CheckMetricsSnapshot(snapshot);
  EXPECT_FALSE(low.ok);

  EXPECT_FALSE(CheckMetricsSnapshot(JsonValue{}).ok);
}

/// The whole point of the subsystem: measuring must not move the numbers.
TEST_F(ObsTest, ScoresBitwiseIdenticalObsOnAndOff) {
  constexpr size_t kSteps = 24;
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, kSteps, 3, 4, /*seed=*/9);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < kSteps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, /*seed=*/10);

  StreamEvalOptions options;
  options.workers = 2;
  options.pipeline_depth = 2;

  auto run_once = [&]() {
    SofiaConfig config;
    config.rank = 3;
    config.period = 4;
    config.lambda1 = 0.5;
    config.lambda2 = 0.5;
    config.max_init_iterations = 5;
    std::vector<std::unique_ptr<StreamingMethod>> owned;
    owned.push_back(std::make_unique<SofiaStream>(config));
    owned.push_back(
        std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}));
    std::vector<StreamingMethod*> methods;
    for (auto& m : owned) methods.push_back(m.get());
    return RunImputationComparison(methods, stream, truth, options);
  };

  SetEnabled(true);
  const std::vector<MethodRunResult> on = run_once();
  SetEnabled(false);
  const std::vector<MethodRunResult> off = run_once();
  SetEnabled(true);

  ASSERT_EQ(on.size(), off.size());
  for (size_t m = 0; m < on.size(); ++m) {
    ASSERT_EQ(on[m].run.nre.size(), off[m].run.nre.size());
    for (size_t t = 0; t < on[m].run.nre.size(); ++t) {
      // EXPECT_EQ on doubles: bitwise identity, not tolerance.
      EXPECT_EQ(on[m].run.nre[t], off[m].run.nre[t])
          << on[m].name << " t=" << t;
    }
    EXPECT_EQ(on[m].run.rae, off[m].run.rae) << on[m].name;
  }
  // The enabled run also populates the histogram-backed percentiles.
  EXPECT_GT(on[0].run.step_latency_p99_us, 0.0);
  EXPECT_GE(on[0].run.step_latency_p99_us, on[0].run.step_latency_p50_us);
  EXPECT_EQ(off[0].run.step_latency_p99_us, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace sofia
