#include "baselines/cp_wopt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/observed_sweep.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(CpWoptTest, AnalyticGradientMatchesFiniteDifferences) {
  Rng rng(41);
  std::vector<Matrix> factors = {Matrix::RandomNormal(3, 2, rng),
                                 Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(2, 2, rng)};
  DenseTensor y = DenseTensor::RandomNormal(Shape({3, 4, 2}), rng);
  Mask omega(y.shape(), true);
  omega.Set(0, false);
  omega.Set(7, false);

  std::vector<Matrix> grads = CpWoptGradient(y, omega, factors);
  const double h = 1e-6;
  for (size_t l = 0; l < factors.size(); ++l) {
    for (size_t i = 0; i < factors[l].rows(); ++i) {
      for (size_t r = 0; r < 2; ++r) {
        std::vector<Matrix> probe = factors;
        probe[l](i, r) += h;
        const double fp = CpWoptLoss(y, omega, probe);
        probe[l](i, r) -= 2 * h;
        const double fm = CpWoptLoss(y, omega, probe);
        EXPECT_NEAR(grads[l](i, r), (fp - fm) / (2 * h), 1e-5)
            << "mode " << l << " (" << i << "," << r << ")";
      }
    }
  }
}

TEST(CpWoptTest, LossIsZeroAtExactFactors) {
  SyntheticTensor syn = MakeSinusoidTensor(4, 3, 10, 2, 5, 43);
  Mask omega(syn.tensor.shape(), true);
  EXPECT_NEAR(CpWoptLoss(syn.tensor, omega, syn.factors), 0.0, 1e-18);
  std::vector<Matrix> grads =
      CpWoptGradient(syn.tensor, omega, syn.factors);
  for (const Matrix& g : grads) EXPECT_LT(g.FrobeniusNorm(), 1e-9);
}

TEST(CpWoptTest, CompletesIncompleteLowRankTensor) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, 15, 2, 5, 47);
  Mask omega(syn.tensor.shape(), true);
  Rng rng(48);
  for (size_t k = 0; k < omega.shape().NumElements(); ++k) {
    if (rng.Bernoulli(0.35)) omega.Set(k, false);
  }
  CpWoptResult res =
      CpWopt(syn.tensor, omega, CpWoptOptions{.rank = 2, .seed = 49});
  EXPECT_LT(NormalizedResidualError(res.completed, syn.tensor), 0.1);
}

TEST(CpWoptTest, SharedPatternOverloadsMatchDensePairEntryPoints) {
  Rng rng(53);
  std::vector<Matrix> factors = {Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(3, 2, rng),
                                 Matrix::RandomNormal(2, 2, rng)};
  DenseTensor y = DenseTensor::RandomNormal(Shape({4, 3, 2}), rng);
  Mask omega(y.shape(), true);
  for (size_t k = 0; k < omega.shape().NumElements(); ++k) {
    if (rng.Bernoulli(0.3)) omega.Set(k, false);
  }

  // One pattern, gathered once, reused for both the loss and the gradient
  // (the build-once path the comparison runner takes).
  std::shared_ptr<const CooList> pattern =
      MakeSharedPattern(omega, /*with_mode_buckets=*/false);
  std::vector<double> values = pattern->Gather(y);

  EXPECT_EQ(CpWoptLoss(*pattern, values, factors),
            CpWoptLoss(y, omega, factors));
  std::vector<Matrix> shared_grads = CpWoptGradient(*pattern, values, factors);
  std::vector<Matrix> dense_grads = CpWoptGradient(y, omega, factors);
  ASSERT_EQ(shared_grads.size(), dense_grads.size());
  for (size_t l = 0; l < shared_grads.size(); ++l) {
    EXPECT_EQ(shared_grads[l].MaxAbsDiff(dense_grads[l]), 0.0);
  }
}

TEST(CpWoptTest, SharedPatternRunMatchesInternalBuild) {
  SyntheticTensor syn = MakeSinusoidTensor(5, 4, 10, 2, 5, 55);
  Mask omega(syn.tensor.shape(), true);
  Rng rng(56);
  for (size_t k = 0; k < omega.shape().NumElements(); ++k) {
    if (rng.Bernoulli(0.3)) omega.Set(k, false);
  }
  CpWoptOptions options{.rank = 2, .max_iterations = 30, .seed = 57};
  CpWoptResult internal = CpWopt(syn.tensor, omega, options);
  CpWoptResult shared =
      CpWopt(syn.tensor, omega, options, MakeSharedPattern(omega));
  EXPECT_EQ(internal.loss, shared.loss);
  EXPECT_EQ(internal.iterations, shared.iterations);
  DenseTensor diff = internal.completed;
  diff -= shared.completed;
  EXPECT_EQ(diff.MaxAbs(), 0.0);
}

TEST(CpWoptTest, LossDecreasesFromRandomStart) {
  SyntheticTensor syn = MakeSinusoidTensor(5, 4, 12, 2, 4, 51);
  Mask omega(syn.tensor.shape(), true);
  Rng rng(52);
  std::vector<Matrix> random_start;
  for (size_t n = 0; n < 3; ++n) {
    random_start.push_back(
        Matrix::Random(syn.tensor.dim(n), 2, rng, 0.0, 1.0));
  }
  const double initial = CpWoptLoss(syn.tensor, omega, random_start);
  CpWoptResult res =
      CpWopt(syn.tensor, omega, CpWoptOptions{.rank = 2, .seed = 52});
  EXPECT_LT(res.loss, initial);
}

}  // namespace
}  // namespace sofia
