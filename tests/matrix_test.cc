#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRowsAndRowAccess) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  std::vector<double> row = m.RowVector(1);
  EXPECT_EQ(row, (std::vector<double>{3, 4}));
  std::vector<double> col = m.ColVector(0);
  EXPECT_EQ(col, (std::vector<double>{1, 3, 5}));
}

TEST(MatrixTest, SetRowSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  m.SetCol(1, {7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, IdentityAndTranspose) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, ArithmeticOperators) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  Matrix scaled2 = 3.0 * a;
  EXPECT_DOUBLE_EQ(scaled2(0, 1), 6.0);
}

TEST(MatrixTest, HadamardProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{2, 0}, {-1, 5}});
  Matrix h = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(h(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 20.0);
}

TEST(MatrixTest, Norms) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.SquaredFrobeniusNorm(), 25.0);
  Matrix c = Matrix::FromRows({{3}, {4}});
  EXPECT_DOUBLE_EQ(c.ColNorm(0), 5.0);
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatTMulEqualsExplicitTranspose) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(7, 3, rng);
  Matrix b = Matrix::RandomNormal(7, 4, rng);
  Matrix lhs = MatTMul(a, b);
  Matrix rhs = MatMul(a.Transpose(), b);
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-12);
}

TEST(MatrixTest, MatVecAndMatTVec) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> x = {1, -1};
  std::vector<double> y = MatVec(a, x);
  EXPECT_EQ(y, (std::vector<double>{-1, -1, -1}));
  std::vector<double> z = {1, 0, 1};
  std::vector<double> w = MatTVec(a, z);
  EXPECT_EQ(w, (std::vector<double>{6, 8}));
}

TEST(MatrixTest, GramMatchesDefinition) {
  Rng rng(9);
  Matrix a = Matrix::RandomNormal(6, 3, rng);
  Matrix g = Gram(a);
  Matrix expected = MatMul(a.Transpose(), a);
  EXPECT_LT(g.MaxAbsDiff(expected), 1e-12);
  // Gram matrices are symmetric.
  EXPECT_LT(g.MaxAbsDiff(g.Transpose()), 1e-12);
}

// Property: transpose reverses products, (AB)^T = B^T A^T.
class MatMulPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulPropertyTest, TransposeReversesProduct) {
  Rng rng(GetParam());
  const size_t m = 2 + GetParam() % 5;
  const size_t k = 1 + GetParam() % 4;
  const size_t n = 3 + GetParam() % 3;
  Matrix a = Matrix::RandomNormal(m, k, rng);
  Matrix b = Matrix::RandomNormal(k, n, rng);
  Matrix lhs = MatMul(a, b).Transpose();
  Matrix rhs = MatMul(b.Transpose(), a.Transpose());
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace sofia
