#include "core/sofia_init.hpp"

#include <gtest/gtest.h>

#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

/// Splits a ground-truth tensor into per-step slices and corrupts them.
struct InitProblem {
  std::vector<DenseTensor> truth_slices;
  CorruptedStream corrupted;
  SofiaConfig config;
};

InitProblem MakeInitProblem(const CorruptionSetting& setting, uint64_t seed) {
  InitProblem p;
  const size_t period = 8;
  p.config.period = period;
  p.config.rank = 3;
  p.config.init_seasons = 3;
  p.config.seed = seed;
  p.config.max_init_iterations = 25;
  // The smoothness weights act against the normal-equation curvature, which
  // scales with the data; 0.5 is the right order for these unit-scale
  // sinusoid tensors (see DESIGN.md §5).
  p.config.lambda1 = 0.5;
  p.config.lambda2 = 0.5;
  SyntheticTensor syn = MakeSinusoidTensor(10, 8, p.config.InitWindow(),
                                           p.config.rank, period, seed);
  for (size_t t = 0; t < p.config.InitWindow(); ++t) {
    p.truth_slices.push_back(syn.tensor.SliceLastMode(t));
  }
  p.corrupted = Corrupt(p.truth_slices, setting, seed + 1);
  return p;
}

TEST(SofiaInitTest, RecoversCleanFullyObservedWindow) {
  InitProblem p = MakeInitProblem({0.0, 0.0, 0.0}, 21);
  // Clean, fully observed data: the smoothness prior only adds bias here,
  // so use the paper-default weight.
  p.config.lambda1 = 1e-3;
  p.config.lambda2 = 1e-3;
  SofiaInitResult res = SofiaInitialize(p.corrupted.slices, p.corrupted.masks,
                                        p.config);
  DenseTensor truth = DenseTensor::StackSlices(p.truth_slices);
  // 0.07 leaves headroom for the small bias of the CP-degeneracy ridge.
  EXPECT_LT(NormalizedResidualError(res.completed, truth), 0.07);
  EXPECT_EQ(res.factors.size(), 3u);
  EXPECT_EQ(res.factors[2].rows(), p.config.InitWindow());
}

TEST(SofiaInitTest, RecoversThroughMissingnessAndOutliers) {
  InitProblem p = MakeInitProblem({30.0, 10.0, 3.0}, 23);
  SofiaInitResult res = SofiaInitialize(p.corrupted.slices, p.corrupted.masks,
                                        p.config);
  DenseTensor truth = DenseTensor::StackSlices(p.truth_slices);
  // Raw corrupted data is far from the truth; the completion must be close.
  EXPECT_LT(NormalizedResidualError(res.completed, truth), 0.25);
}

TEST(SofiaInitTest, OutlierTensorFindsInjectedSpikes) {
  InitProblem p = MakeInitProblem({0.0, 10.0, 4.0}, 25);
  SofiaInitResult res = SofiaInitialize(p.corrupted.slices, p.corrupted.masks,
                                        p.config);
  Mask outlier_truth = Mask::StackSlices(p.corrupted.outlier_positions);
  size_t hits = 0, total = 0, false_alarms = 0, clean = 0;
  for (size_t k = 0; k < res.outliers.NumElements(); ++k) {
    if (outlier_truth.Get(k)) {
      ++total;
      if (std::fabs(res.outliers[k]) > 1e-9) ++hits;
    } else {
      ++clean;
      if (std::fabs(res.outliers[k]) > 1.0) ++false_alarms;
    }
  }
  ASSERT_GT(total, 0u);
  // Recall: the vast majority of the big injected spikes are captured.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.9);
  // Precision proxy: almost no large spurious outliers on clean entries.
  EXPECT_LT(static_cast<double>(false_alarms) / static_cast<double>(clean),
            0.05);
}

TEST(SofiaInitTest, SmoothInitBeatsVanillaAlsUnderHeavyCorruption) {
  // The Fig. 2 experiment in miniature: harsh missingness + outliers.
  InitProblem p = MakeInitProblem({60.0, 15.0, 5.0}, 27);
  SofiaInitResult smooth = SofiaInitialize(p.corrupted.slices,
                                           p.corrupted.masks, p.config,
                                           /*smooth_temporal=*/true);
  SofiaInitResult vanilla = SofiaInitialize(p.corrupted.slices,
                                            p.corrupted.masks, p.config,
                                            /*smooth_temporal=*/false);
  DenseTensor truth = DenseTensor::StackSlices(p.truth_slices);
  const double nre_smooth = NormalizedResidualError(smooth.completed, truth);
  const double nre_vanilla =
      NormalizedResidualError(vanilla.completed, truth);
  EXPECT_LT(nre_smooth, nre_vanilla);
}

TEST(SofiaInitTest, RejectsWrongSliceCount) {
  InitProblem p = MakeInitProblem({0.0, 0.0, 0.0}, 29);
  p.corrupted.slices.pop_back();
  p.corrupted.masks.pop_back();
  EXPECT_DEATH(
      SofiaInitialize(p.corrupted.slices, p.corrupted.masks, p.config),
      "init");
}

}  // namespace
}  // namespace sofia
