#include "tensor/sparse_kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sofia_als.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/products.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

Mask RandomMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

std::vector<Matrix> RandomFactors(const Shape& shape, size_t rank, Rng& rng) {
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::RandomNormal(shape.dim(n), rank, rng));
  }
  return factors;
}

TEST(CooListTest, RecordsMatchMaskInLinearOrder) {
  Rng rng(301);
  Shape shape({4, 3, 5});
  Mask omega = RandomMask(shape, 0.4, rng);
  CooList coo = CooList::Build(omega);
  EXPECT_EQ(coo.nnz(), omega.CountObserved());
  EXPECT_EQ(coo.shape(), shape);
  size_t record = 0;
  std::vector<size_t> idx(shape.order(), 0);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      ASSERT_LT(record, coo.nnz());
      EXPECT_EQ(coo.LinearIndex(record), linear);
      for (size_t n = 0; n < shape.order(); ++n) {
        EXPECT_EQ(coo.Index(record, n), idx[n]);
      }
      ++record;
    }
    shape.Next(&idx);
  }
  EXPECT_EQ(record, coo.nnz());
}

TEST(CooListTest, SliceBucketsPartitionRecords) {
  Rng rng(303);
  Shape shape({5, 4, 6});
  Mask omega = RandomMask(shape, 0.3, rng);
  CooList coo = CooList::Build(omega);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    const std::vector<uint32_t>& order = coo.ModeOrder(mode);
    const std::vector<size_t>& ptr = coo.SlicePtr(mode);
    ASSERT_EQ(ptr.size(), shape.dim(mode) + 1);
    EXPECT_EQ(ptr.front(), 0u);
    EXPECT_EQ(ptr.back(), coo.nnz());
    for (size_t s = 0; s < shape.dim(mode); ++s) {
      for (size_t p = ptr[s]; p < ptr[s + 1]; ++p) {
        EXPECT_EQ(coo.Index(order[p], mode), s);
        // Stable bucketing: ascending linear order within a slice.
        if (p > ptr[s]) {
          EXPECT_LT(coo.LinearIndex(order[p - 1]),
                    coo.LinearIndex(order[p]));
        }
      }
    }
  }
}

TEST(CooListTest, BuildForModeBucketsOnlyThatMode) {
  Rng rng(304);
  Shape shape({4, 6, 3});
  Mask omega = RandomMask(shape, 0.4, rng);
  CooList full = CooList::Build(omega);
  CooList records = CooList::Build(omega, /*with_mode_buckets=*/false);
  CooList one = CooList::BuildForMode(omega, 1);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    EXPECT_TRUE(full.has_mode_bucket(mode));
    EXPECT_FALSE(records.has_mode_bucket(mode));
    EXPECT_EQ(one.has_mode_bucket(mode), mode == 1);
  }
  EXPECT_EQ(one.ModeOrder(1), full.ModeOrder(1));
  EXPECT_EQ(one.SlicePtr(1), full.SlicePtr(1));
  EXPECT_EQ(records.nnz(), full.nnz());
}

TEST(CooListTest, GatherAndGatherResidual) {
  Rng rng(305);
  Shape shape({3, 4, 2});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o = DenseTensor::RandomNormal(shape, rng, 0.1);
  Mask omega = RandomMask(shape, 0.5, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> values = coo.Gather(y);
  std::vector<double> residual = coo.GatherResidual(y, o);
  ASSERT_EQ(values.size(), coo.nnz());
  for (size_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_EQ(values[k], y[coo.LinearIndex(k)]);
    EXPECT_EQ(residual[k], y[coo.LinearIndex(k)] - o[coo.LinearIndex(k)]);
  }
}

/// Dense-scan MTTKRP restricted to observed entries, kept verbatim from the
/// pre-COO kernel as the comparison oracle.
Matrix ReferenceMaskedMttkrp(const DenseTensor& x, const Mask& omega,
                             const std::vector<Matrix>& factors, size_t mode) {
  const Shape& shape = x.shape();
  const size_t rank = factors[0].cols();
  Matrix out(shape.dim(mode), rank, 0.0);
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double v = x[linear];
      if (v != 0.0) {
        for (size_t r = 0; r < rank; ++r) h[r] = v;
        for (size_t l = 0; l < factors.size(); ++l) {
          if (l == mode) continue;
          const double* row = factors[l].Row(idx[l]);
          for (size_t r = 0; r < rank; ++r) h[r] *= row[r];
        }
        double* orow = out.Row(idx[mode]);
        for (size_t r = 0; r < rank; ++r) orow[r] += h[r];
      }
    }
    shape.Next(&idx);
  }
  return out;
}

class SparseKernelsDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(SparseKernelsDensityTest, CooMttkrpMatchesDenseThreeWay) {
  const double density = GetParam();
  Rng rng(307);
  Shape shape({7, 5, 6});
  DenseTensor x = DenseTensor::RandomNormal(shape, rng);
  Mask omega = RandomMask(shape, density, rng);
  std::vector<Matrix> factors = RandomFactors(shape, 3, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> values = coo.Gather(x);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix expected = ReferenceMaskedMttkrp(x, omega, factors, mode);
    Matrix got = CooMttkrp(coo, values, factors, mode);
    EXPECT_LE(got.MaxAbsDiff(expected), 1e-12) << "mode " << mode;
    // The public MaskedMttkrp entry point routes through the same kernel.
    Matrix via_api = MaskedMttkrp(x, omega, factors, mode);
    EXPECT_LE(via_api.MaxAbsDiff(expected), 1e-12) << "mode " << mode;
  }
}

TEST_P(SparseKernelsDensityTest, CooRowSystemsMatchDenseFourWay) {
  const double density = GetParam();
  Rng rng(309);
  Shape shape({4, 3, 5, 6});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o = DenseTensor::RandomNormal(shape, rng, 0.2);
  Mask omega = RandomMask(shape, density, rng);
  std::vector<Matrix> factors = RandomFactors(shape, 4, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> ystar = coo.GatherResidual(y, o);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    RowSystems dense = DenseRowSystems(y, omega, o, factors, mode);
    RowSystems sparse = CooRowSystems(coo, ystar, factors, mode);
    ASSERT_EQ(dense.b.size(), sparse.b.size());
    for (size_t i = 0; i < dense.b.size(); ++i) {
      EXPECT_LE(sparse.b[i].MaxAbsDiff(dense.b[i]), 1e-12)
          << "mode " << mode << " row " << i;
      for (size_t r = 0; r < dense.c[i].size(); ++r) {
        EXPECT_NEAR(sparse.c[i][r], dense.c[i][r], 1e-12);
      }
      // The mirrored rank-1 accumulation must stay exactly symmetric.
      EXPECT_LE(sparse.b[i].MaxAbsDiff(sparse.b[i].Transpose()), 0.0);
    }
  }
}

TEST_P(SparseKernelsDensityTest, CooNormsMatchDense) {
  const double density = GetParam();
  Rng rng(311);
  Shape shape({6, 5, 7});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o = DenseTensor::RandomNormal(shape, rng, 0.1);
  Mask omega = RandomMask(shape, density, rng);
  std::vector<Matrix> factors = RandomFactors(shape, 3, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> ystar = coo.GatherResidual(y, o);
  const double dense_res = DenseResidualNorm(y, omega, o, factors);
  const double coo_res = CooResidualNorm(coo, ystar, factors);
  EXPECT_NEAR(coo_res, dense_res, 1e-12 * (1.0 + dense_res));
  const double dense_data = DenseDataNorm(y, omega, o);
  const double coo_data = CooDataNorm(ystar);
  EXPECT_NEAR(coo_data, dense_data, 1e-12 * (1.0 + dense_data));
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseKernelsDensityTest,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

TEST(SparseKernelsTest, EmptyMaskYieldsZeroSystemsAndNorms) {
  Rng rng(313);
  Shape shape({4, 5, 3});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o(shape, 0.0);
  Mask omega(shape, false);
  std::vector<Matrix> factors = RandomFactors(shape, 2, rng);
  CooList coo = CooList::Build(omega);
  EXPECT_EQ(coo.nnz(), 0u);
  std::vector<double> ystar = coo.GatherResidual(y, o);
  Matrix m = CooMttkrp(coo, ystar, factors, 1);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
  RowSystems sys = CooRowSystems(coo, ystar, factors, 0);
  for (size_t i = 0; i < sys.b.size(); ++i) {
    EXPECT_DOUBLE_EQ(sys.b[i].FrobeniusNorm(), 0.0);
    for (double v : sys.c[i]) EXPECT_DOUBLE_EQ(v, 0.0);
  }
  EXPECT_DOUBLE_EQ(CooResidualNorm(coo, ystar, factors), 0.0);
  EXPECT_DOUBLE_EQ(CooDataNorm(ystar), 0.0);
}

TEST(SparseKernelsTest, FullyObservedMttkrpMatchesUnmaskedKernel) {
  Rng rng(315);
  Shape shape({5, 4, 3});
  DenseTensor x = DenseTensor::RandomNormal(shape, rng);
  Mask omega(shape, true);
  std::vector<Matrix> factors = RandomFactors(shape, 3, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> values = coo.Gather(x);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix got = CooMttkrp(coo, values, factors, mode);
    Matrix expected = Mttkrp(x, factors, mode);
    EXPECT_LE(got.MaxAbsDiff(expected), 1e-12);
  }
}

/// The parallel partition assigns whole work units (slices, fixed record
/// blocks) to threads, so every thread count must produce bitwise-identical
/// results.
TEST(SparseKernelsTest, DeterministicAcrossThreadCounts) {
  Rng rng(317);
  Shape shape({9, 8, 7, 5});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o = DenseTensor::RandomNormal(shape, rng, 0.3);
  Mask omega = RandomMask(shape, 0.35, rng);
  std::vector<Matrix> factors = RandomFactors(shape, 4, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> ystar = coo.GatherResidual(y, o);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix m1 = CooMttkrp(coo, ystar, factors, mode, 1);
    Matrix m4 = CooMttkrp(coo, ystar, factors, mode, 4);
    EXPECT_EQ(m1.MaxAbsDiff(m4), 0.0) << "mode " << mode;
    RowSystems s1 = CooRowSystems(coo, ystar, factors, mode, 1);
    RowSystems s4 = CooRowSystems(coo, ystar, factors, mode, 4);
    for (size_t i = 0; i < s1.b.size(); ++i) {
      EXPECT_EQ(s1.b[i].MaxAbsDiff(s4.b[i]), 0.0);
      EXPECT_EQ(s1.c[i], s4.c[i]);
    }
  }
  EXPECT_EQ(CooResidualNorm(coo, ystar, factors, 1),
            CooResidualNorm(coo, ystar, factors, 4));
}

/// Acceptance guard: the COO/threaded ALS path and the dense-scan path must
/// walk identical fitness trajectories on a masked problem.
TEST(SparseKernelsTest, SofiaAlsFitnessMatchesDensePath) {
  Rng rng(319);
  Shape shape({8, 7, 12});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o(shape, 0.0);
  Mask omega = RandomMask(shape, 0.6, rng);
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.max_als_iterations = 12;
  config.tolerance = 0.0;

  Rng frng(321);
  std::vector<Matrix> init;
  for (size_t n = 0; n < shape.order(); ++n) {
    init.push_back(Matrix::Random(shape.dim(n), config.rank, frng, 0.0, 1.0));
  }

  SofiaConfig dense_config = config;
  dense_config.use_sparse_kernels = false;
  std::vector<Matrix> dense_factors = init;
  SofiaAlsResult dense = SofiaAls(y, omega, o, dense_config, &dense_factors);

  SofiaConfig coo_config = config;
  coo_config.use_sparse_kernels = true;
  coo_config.num_threads = 4;
  std::vector<Matrix> coo_factors = init;
  SofiaAlsResult sparse = SofiaAls(y, omega, o, coo_config, &coo_factors);

  EXPECT_EQ(dense.sweeps, sparse.sweeps);
  EXPECT_NEAR(dense.fitness, sparse.fitness, 1e-10);
  for (size_t n = 0; n < shape.order(); ++n) {
    EXPECT_LE(dense_factors[n].MaxAbsDiff(coo_factors[n]), 1e-10);
  }
}

}  // namespace
}  // namespace sofia
