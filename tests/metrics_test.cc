#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/mask.hpp"

namespace sofia {
namespace {

TEST(MetricsTest, NreZeroForExactEstimate) {
  DenseTensor t(Shape({2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(NormalizedResidualError(t, t), 0.0);
}

TEST(MetricsTest, NreMatchesHandComputation) {
  DenseTensor truth(Shape({2}), 0.0);
  truth[0] = 3.0;
  truth[1] = 4.0;  // ||truth|| = 5.
  DenseTensor est = truth;
  est[0] = 6.0;  // diff = (3, 0), ||diff|| = 3.
  EXPECT_DOUBLE_EQ(NormalizedResidualError(est, truth), 3.0 / 5.0);
}

TEST(MetricsTest, NreOfZeroTruthIsZeroOrOne) {
  DenseTensor zero(Shape({2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedResidualError(zero, zero), 0.0);
  DenseTensor nonzero(Shape({2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedResidualError(nonzero, zero), 1.0);
}

TEST(MetricsTest, MeanAndRunningAverage) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(RunningAverageError({0.1, 0.3}), 0.2);
}

TEST(MetricsTest, AfeAveragesPerHorizonNre) {
  DenseTensor truth(Shape({2}), 1.0);
  DenseTensor exact = truth;
  DenseTensor off(Shape({2}), 2.0);  // NRE = 1.
  EXPECT_DOUBLE_EQ(AverageForecastingError({exact, off}, {truth, truth}),
                   0.5);
}

TEST(MetricsTest, MissingOnlyErrorIgnoresObservedEntries) {
  DenseTensor truth(Shape({2, 2}), 0.0);
  truth[0] = 3.0;   // Observed.
  truth[1] = 4.0;   // Missing.
  DenseTensor est = truth;
  est[0] = 100.0;   // Gross error at an *observed* entry: must not count.
  est[1] = 5.0;     // Error 1 at the missing entry.
  Mask observed(Shape({2, 2}), false);
  observed.Set(0, true);
  observed.Set(2, true);
  observed.Set(3, true);
  // Only entry 1 is scored: |5-4| / |4| = 0.25.
  EXPECT_DOUBLE_EQ(MissingOnlyResidualError(est, truth, observed), 0.25);
}

TEST(MetricsTest, MissingOnlyErrorWithNothingMissingIsZero) {
  DenseTensor t(Shape({2}), 1.0);
  Mask all(Shape({2}), true);
  EXPECT_DOUBLE_EQ(MissingOnlyResidualError(t, t, all), 0.0);
}

}  // namespace
}  // namespace sofia
