// Deterministic fault-injection plumbing (util/fault_injection): armed
// specs fire on exactly the k-th operation of a named site, IO-error
// windows span `count` consecutive ops, torn writes size their persisted
// prefix from the payload, and ScopedFaultPlan can never leak a plan into
// the next test.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/fault_injection.hpp"

namespace sofia {
namespace fault {
namespace {

TEST(FaultInjectionTest, DisabledLayerDecidesNothing) {
  ScopedFaultPlan plan;  // Reset; nothing armed.
  EXPECT_FALSE(Enabled());
  const Decision d = OnIo("any.site", 128);
  EXPECT_FALSE(d.io_error);
  EXPECT_FALSE(d.crash);
  EXPECT_FALSE(d.torn);
  // Unarmed fast path does not even count ops.
  EXPECT_EQ(OpsAt("any.site"), 0u);
}

TEST(FaultInjectionTest, CrashFiresOnExactlyTheKthOp) {
  ScopedFaultPlan plan(FaultSpec{"site.a", FaultKind::kCrash, /*at=*/2});
  EXPECT_TRUE(Enabled());
  EXPECT_FALSE(OnIo("site.a", 0).crash);  // op 0
  EXPECT_FALSE(OnIo("site.b", 0).crash);  // other site: no match
  EXPECT_FALSE(OnIo("site.a", 0).crash);  // op 1
  EXPECT_TRUE(OnIo("site.a", 0).crash);   // op 2: fire
  EXPECT_FALSE(OnIo("site.a", 0).crash);  // op 3: one-shot
  EXPECT_EQ(OpsAt("site.a"), 4u);
  EXPECT_EQ(OpsAt("site.b"), 1u);
  EXPECT_EQ(InjectedCount(), 1u);
}

TEST(FaultInjectionTest, IoErrorWindowSpansCountOps) {
  ScopedFaultPlan plan(
      FaultSpec{"site.w", FaultKind::kIoError, /*at=*/1, /*count=*/3});
  EXPECT_FALSE(OnIo("site.w", 0).io_error);  // op 0
  EXPECT_TRUE(OnIo("site.w", 0).io_error);   // ops 1..3 fail
  EXPECT_TRUE(OnIo("site.w", 0).io_error);
  EXPECT_TRUE(OnIo("site.w", 0).io_error);
  EXPECT_FALSE(OnIo("site.w", 0).io_error);  // transient window over
}

TEST(FaultInjectionTest, TornWriteSizesPrefixFromPayload) {
  ScopedFaultPlan plan(FaultSpec{"site.t", FaultKind::kTornWrite, /*at=*/0,
                                 /*count=*/1, /*fraction=*/0.25});
  const Decision d = OnIo("site.t", 1000);
  EXPECT_TRUE(d.crash);
  EXPECT_TRUE(d.torn);
  EXPECT_EQ(d.torn_bytes, 250u);
}

TEST(FaultInjectionTest, CrashThrowsSimulatedCrashWithSite) {
  bool caught = false;
  try {
    Crash("the.site");
  } catch (const SimulatedCrash& crash) {
    caught = true;
    EXPECT_EQ(crash.site, "the.site");
  }
  EXPECT_TRUE(caught);
}

TEST(FaultInjectionTest, EmptySiteMatchesEverySite) {
  ScopedFaultPlan plan(FaultSpec{"", FaultKind::kIoError, 0, /*count=*/100});
  EXPECT_TRUE(OnIo("alpha", 0).io_error);
  EXPECT_TRUE(OnIo("beta", 0).io_error);
}

TEST(FaultInjectionTest, ScopedPlanResetsOnDestruction) {
  {
    ScopedFaultPlan plan(FaultSpec{"leak.site", FaultKind::kCrash, 0});
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(OpsAt("leak.site"), 0u);
}

TEST(FaultInjectionTest, AtRestHelpersFlipAndTruncate) {
  char tmpl[] = "/tmp/sofia_fault_XXXXXX";
  const int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  ::close(fd);
  const std::string path = tmpl;
  {
    std::ofstream out(path, std::ios::binary);
    out << "abcdefgh";
  }
  ASSERT_EQ(FileSize(path), 8u);
  ASSERT_TRUE(FlipFileBit(path, 2, 0));  // 'c' ^ 1 = 'b'
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "abbdefgh");
  }
  ASSERT_TRUE(TruncateFile(path, 3));
  EXPECT_EQ(FileSize(path), 3u);
  EXPECT_FALSE(FlipFileBit(path, 10, 0));  // Past EOF.
  EXPECT_EQ(FileSize("/nonexistent/nope"), SIZE_MAX);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fault
}  // namespace sofia
