#include "timeseries/multiplicative_hw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/hw_fit.hpp"

namespace sofia {
namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Level-proportional seasonality: the multiplicative model's home turf.
std::vector<double> MultiplicativeSeries(size_t n, size_t m, double level0,
                                         double growth, double swing) {
  std::vector<double> y(n);
  for (size_t t = 0; t < n; ++t) {
    const double level = level0 + growth * static_cast<double>(t);
    const double season =
        1.0 + swing * std::sin(kTwoPi * static_cast<double>(t % m) /
                               static_cast<double>(m));
    y[t] = level * season;
  }
  return y;
}

TEST(MultiplicativeHwTest, ConstantSeriesForecastsConstant) {
  std::vector<double> y(24, 5.0);
  MultiplicativeHoltWinters hw(4, HwParams{0.4, 0.2, 0.3});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);
  for (size_t h = 1; h <= 8; ++h) {
    EXPECT_NEAR(hw.Forecast(h), 5.0, 1e-9) << "h=" << h;
  }
}

TEST(MultiplicativeHwTest, InitializationDividesOutLevel) {
  // Season 1 = {2, 4, 2, 4} (mean 3); seasonal indices 2/3, 4/3, ...
  std::vector<double> y = {2, 4, 2, 4, 2, 4, 2, 4};
  MultiplicativeHoltWinters hw(4, HwParams{0.3, 0.1, 0.1});
  hw.InitializeFromHistory(y);
  EXPECT_DOUBLE_EQ(hw.level(), 3.0);
  EXPECT_DOUBLE_EQ(hw.trend(), 0.0);
  EXPECT_DOUBLE_EQ(hw.seasonal()[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(hw.seasonal()[1], 4.0 / 3.0);
}

TEST(MultiplicativeHwTest, UpdateMatchesEquationsByHand) {
  MultiplicativeHoltWinters hw(2, HwParams{0.5, 0.4, 0.2});
  hw.SetState(10.0, 1.0, {0.8, 1.2});
  hw.Update(8.0);
  // l = 0.5 * (8 / 0.8) + 0.5 * 11 = 5 + 5.5 = 10.5
  EXPECT_DOUBLE_EQ(hw.level(), 10.5);
  // b = 0.4 * (10.5 - 10) + 0.6 * 1 = 0.8
  EXPECT_DOUBLE_EQ(hw.trend(), 0.8);
  // s = 0.2 * (8 / 11) + 0.8 * 0.8 = 0.78545...
  EXPECT_NEAR(hw.SeasonalFromNext()[1], 0.2 * (8.0 / 11.0) + 0.64, 1e-12);
}

TEST(MultiplicativeHwTest, TracksGrowingAmplitudeBetterThanAdditive) {
  const size_t m = 6;
  std::vector<double> y =
      MultiplicativeSeries(20 * m, m, 10.0, 0.25, 0.5);
  // Fit both models on a prefix, forecast one season, compare.
  const size_t train = 18 * m;
  std::vector<double> prefix(y.begin(), y.begin() + train);

  MultiplicativeHoltWinters mult = FitMultiplicativeHw(prefix, m);
  HwFit add_fit = FitHoltWinters(prefix, m);
  HoltWinters add = ModelFromFit(add_fit, m);

  double mult_err = 0.0, add_err = 0.0;
  for (size_t h = 1; h <= m; ++h) {
    mult_err += std::fabs(mult.Forecast(h) - y[train + h - 1]);
    add_err += std::fabs(add.Forecast(h) - y[train + h - 1]);
  }
  EXPECT_LT(mult_err, add_err);
}

TEST(MultiplicativeHwTest, SseMatchesManualReplay) {
  const size_t m = 4;
  std::vector<double> y = MultiplicativeSeries(10 * m, m, 5.0, 0.1, 0.3);
  HwParams params{0.4, 0.2, 0.3};
  MultiplicativeHoltWinters hw(m, params);
  hw.InitializeFromHistory(y);
  double sse = 0.0;
  for (double v : y) {
    const double e = v - hw.ForecastNext();
    sse += e * e;
    hw.Update(v);
  }
  EXPECT_NEAR(MultiplicativeHwSse(y, m, params), sse, 1e-9);
}

TEST(MultiplicativeHwTest, SurvivesZeroCrossingInput) {
  // Degenerate input (zeros) must not divide by zero.
  std::vector<double> y(16, 0.0);
  MultiplicativeHoltWinters hw(4, HwParams{0.5, 0.2, 0.3});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);
  EXPECT_TRUE(std::isfinite(hw.Forecast(1)));
}

}  // namespace
}  // namespace sofia
