// Regression for 32-bit overflow in the linearization chain: a shape whose
// volume exceeds 2^32 must round-trip record coordinates ↔ linear indices
// exactly (strides and products promoted to size_t throughout), compile to
// CSF, and produce correct kernel results for records whose linear index
// does not fit in 32 bits. No dense structure is ever allocated — the
// pattern holds a handful of records spread across the huge index space.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/shape.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(LargeIndexTest, LinearizationSurvivesVolumesBeyond32Bits) {
  // 3 * 2048 * 2048 * 513 = 6,455,033,856 > 2^32. Every per-mode dimension
  // still fits uint32 (the coordinate storage width); only products of
  // dimensions overflow 32 bits.
  Shape shape({3, 2048, 2048, 513});
  ASSERT_GT(shape.NumElements(), uint64_t{1} << 32);

  // Records spread over the whole range, the back half past 2^32; built
  // from coordinates so the expected round trip is independent of any
  // stride arithmetic inside the library.
  Rng rng(77);
  std::vector<std::vector<size_t>> coords;
  for (size_t k = 0; k < 200; ++k) {
    coords.push_back({static_cast<size_t>(rng.Uniform(0.0, 3.0)),
                      static_cast<size_t>(rng.Uniform(0.0, 2048.0)),
                      static_cast<size_t>(rng.Uniform(0.0, 2048.0)),
                      static_cast<size_t>(rng.Uniform(0.0, 513.0))});
  }
  std::vector<size_t> linear;
  for (const std::vector<size_t>& c : coords) {
    size_t lin = 0;
    for (size_t n = shape.order(); n-- > 0;) {
      lin = lin * shape.dim(n) + c[n];
    }
    EXPECT_EQ(lin, shape.Linearize(c));
    linear.push_back(lin);
  }
  std::sort(linear.begin(), linear.end());
  linear.erase(std::unique(linear.begin(), linear.end()), linear.end());
  ASSERT_GT(linear.back(), uint64_t{1} << 32);

  CooList coo = CooList::FromIndices(shape, linear);
  ASSERT_EQ(coo.nnz(), linear.size());
  for (size_t k = 0; k < coo.nnz(); ++k) {
    // Coordinate decode and re-linearize must be the identity — a 32-bit
    // intermediate anywhere in the stride chain would corrupt the back
    // half of the records.
    const uint32_t* c = coo.Coords(k);
    size_t lin = 0;
    for (size_t n = shape.order(); n-- > 0;) {
      lin = lin * shape.dim(n) + c[n];
    }
    EXPECT_EQ(lin, coo.LinearIndex(k)) << "record " << k;
    EXPECT_EQ(coo.LinearIndex(k), linear[k]) << "record " << k;
  }

  // The fiber trees compile over the same records and spell the same
  // coordinates (leaf walk covers every record exactly once).
  CsfTensor csf = CsfTensor::Build(coo);
  ASSERT_EQ(csf.nnz(), coo.nnz());

  // Kernel sanity at rank 2 against a per-record reference computed from
  // the decoded coordinates — wrong coordinates would misroute rows.
  size_t rank = 2;
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::Random(shape.dim(n), rank, rng, -1.0, 1.0));
  }
  std::vector<double> temporal_row = {0.7, -1.3};
  std::vector<double> gathered =
      CooKruskalGather(coo, factors, temporal_row);
  std::vector<double> csf_gathered =
      CsfKruskalGather(csf, factors, temporal_row);
  ASSERT_EQ(gathered.size(), coo.nnz());
  for (size_t k = 0; k < coo.nnz(); ++k) {
    const uint32_t* c = coo.Coords(k);
    double expect = 0.0;
    for (size_t r = 0; r < rank; ++r) {
      double h = temporal_row[r];
      for (size_t n = 0; n < shape.order(); ++n) {
        h *= factors[n](c[n], r);
      }
      expect += h;
    }
    EXPECT_NEAR(gathered[k], expect, 1e-12 * (1.0 + std::abs(expect)))
        << "record " << k;
    EXPECT_NEAR(csf_gathered[k], expect, 1e-12 * (1.0 + std::abs(expect)))
        << "record " << k;
  }
}

}  // namespace
}  // namespace sofia
