// DurableGuard kill-and-recover matrix: for every injected crash point —
// snapshot mid-write (torn tmp), snapshot rename, journal mid-append (torn
// record), fsync, and recovery mid-replay — a restart from whatever the
// "disk" holds resumes the stream and produces estimates bitwise identical
// to a run that never crashed. Corrupted-at-rest snapshots degrade to the
// newest older uncorrupted generation (with the journal covering the gap),
// and when nothing on disk is usable the guard reports that instead of
// crashing, hanging, or silently answering wrong.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/durable_guard.hpp"
#include "eval/stream_guard.hpp"
#include "tensor/coo_list.hpp"
#include "util/durable_io.hpp"
#include "util/fault_injection.hpp"
#include "util/shard_executor.hpp"

namespace sofia {
namespace {

constexpr size_t kSteps = 60;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sofia_dguard_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// A 60-step corrupted stream, pre-decoded to the canonical form (observed
/// entries only) so raw methods and durable guards see identical inputs.
CorruptedStream MakeStream(uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, kSteps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < kSteps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  CorruptedStream stream = Corrupt(truth, {20.0, 5.0, 2.0}, seed + 1);
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    stream.slices[t] = stream.masks[t].Apply(stream.slices[t]);
  }
  return stream;
}

std::unique_ptr<StreamingMethod> MakeInner() {
  return std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3});
}

DurableGuardOptions MakeOptions(const std::string& dir) {
  DurableGuardOptions options;
  options.state_dir = dir;
  options.snapshot_every = 7;  // Several generations within 60 steps.
  options.generations = 3;
  options.retry.sleep = false;
  return options;
}

/// Estimates gathered at the observed entries of step t.
std::vector<double> GatherStep(StreamingMethod* method,
                               const CorruptedStream& stream, size_t t) {
  StepResult result = method->StepLazy(stream.slices[t], stream.masks[t]);
  CooList pattern =
      CooList::Build(stream.masks[t], /*with_mode_buckets=*/false);
  return result.GatherAt(pattern);
}

/// Per-step gathered estimates of an uninterrupted, unguarded run — the
/// bitwise reference every recovered run must reproduce.
std::vector<std::vector<double>> Reference(const CorruptedStream& stream) {
  std::unique_ptr<StreamingMethod> method = MakeInner();
  std::vector<std::vector<double>> out;
  for (size_t t = 0; t < kSteps; ++t) {
    out.push_back(GatherStep(method.get(), stream, t));
  }
  return out;
}

/// Drives a fresh durable guard until `spec` kills it, "reboots" into a new
/// guard over the same state_dir, recovers, and finishes the stream.
/// Verifies every estimate produced after recovery is bitwise identical to
/// the reference, and that recovery lost at most the steps after the last
/// consistency point (it must never resume PAST the crash step).
void KillRecoverResume(const CorruptedStream& stream,
                       const std::vector<std::vector<double>>& reference,
                       const fault::FaultSpec& spec) {
  SCOPED_TRACE(spec.site + " at op " + std::to_string(spec.at));
  const std::string dir = MakeTempDir();

  // --- Phase 1: run until the injected crash kills the "process". -------
  size_t crash_step = kSteps;
  {
    DurableGuard guard(MakeInner(), MakeOptions(dir));
    fault::ScopedFaultPlan plan(spec);
    try {
      for (size_t t = 0; t < kSteps; ++t) {
        const std::vector<double> got = GatherStep(&guard, stream, t);
        ASSERT_EQ(got, reference[t]) << "pre-crash divergence at step " << t;
      }
      guard.Drain();
    } catch (const fault::SimulatedCrash& crash) {
      crash_step = guard.telemetry().steps;
      EXPECT_EQ(crash.site, spec.site);
    }
    fault::Reset();
    ASSERT_LT(crash_step, kSteps) << "fault never fired — dead matrix row";
  }  // Guard destroyed: whatever reached disk is all recovery gets.

  // --- Phase 2: reboot, recover, resume. --------------------------------
  DurableGuard rebooted(MakeInner(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  ASSERT_TRUE(report.restored) << "no usable snapshot after " << spec.site;
  ASSERT_LE(report.resume_step, crash_step + 1);
  for (size_t t = report.resume_step; t < kSteps; ++t) {
    const std::vector<double> got = GatherStep(&rebooted, stream, t);
    ASSERT_EQ(got, reference[t])
        << "recovered run diverged at step " << t << " (resumed from "
        << report.resume_step << ")";
  }
}

TEST(DurableGuardTest, UninterruptedRunMatchesRawMethodBitwise) {
  const CorruptedStream stream = MakeStream(211);
  const std::vector<std::vector<double>> reference = Reference(stream);
  DurableGuard guard(MakeInner(), MakeOptions(MakeTempDir()));
  for (size_t t = 0; t < kSteps; ++t) {
    EXPECT_EQ(GatherStep(&guard, stream, t), reference[t]) << "step " << t;
  }
  guard.Drain();
  EXPECT_EQ(guard.telemetry().steps, kSteps);
  EXPECT_EQ(guard.telemetry().journal_appends, kSteps);
  EXPECT_GT(guard.telemetry().snapshots_written, 0u);
  EXPECT_EQ(guard.telemetry().journal_failures, 0u);
}

TEST(DurableGuardTest, KillAndRecoverMatrixIsBitwiseIdentical) {
  const CorruptedStream stream = MakeStream(223);
  const std::vector<std::vector<double>> reference = Reference(stream);

  const fault::FaultSpec matrix[] = {
      // Snapshot mid-write: torn tmp file (never renamed in).
      {"atomic.write", fault::FaultKind::kTornWrite, 2, 1, 0.5},
      {"atomic.write", fault::FaultKind::kTornWrite, 4, 1, 0.1},
      // Snapshot crash before any bytes / at fsync / at rename.
      {"atomic.write", fault::FaultKind::kCrash, 3, 1, 0.5},
      {"atomic.fsync", fault::FaultKind::kCrash, 2, 1, 0.5},
      {"atomic.rename", fault::FaultKind::kCrash, 1, 1, 0.5},
      {"atomic.rename", fault::FaultKind::kCrash, 3, 1, 0.5},
      // Journal mid-append: torn record, various points in the run.
      {"journal.append", fault::FaultKind::kTornWrite, 5, 1, 0.5},
      {"journal.append", fault::FaultKind::kTornWrite, 20, 1, 0.8},
      {"journal.append", fault::FaultKind::kCrash, 33, 1, 0.5},
      // Journal group-commit fsync.
      {"journal.fsync", fault::FaultKind::kCrash, 2, 1, 0.5},
  };
  for (const fault::FaultSpec& spec : matrix) {
    KillRecoverResume(stream, reference, spec);
  }
}

TEST(DurableGuardTest, CrashDuringRecoveryReplayIsReRecoverable) {
  const CorruptedStream stream = MakeStream(227);
  const std::vector<std::vector<double>> reference = Reference(stream);
  const std::string dir = MakeTempDir();

  // Run partway, then stop without a final snapshot: the journal tail is
  // ahead of the newest snapshot, so recovery must replay.
  size_t ran = 24;
  {
    DurableGuard guard(MakeInner(), MakeOptions(dir));
    for (size_t t = 0; t < ran; ++t) GatherStep(&guard, stream, t);
    guard.Drain();
  }

  // First recovery attempt dies mid-replay; the second must succeed off
  // the same files (recovery mutates nothing until its final snapshot).
  {
    DurableGuard guard(MakeInner(), MakeOptions(dir));
    fault::ScopedFaultPlan plan(
        {"recover.replay", fault::FaultKind::kCrash, 1, 1, 0.5});
    EXPECT_THROW(guard.Recover(), fault::SimulatedCrash);
  }
  DurableGuard rebooted(MakeInner(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  ASSERT_TRUE(report.restored);
  EXPECT_EQ(report.resume_step, ran);  // Drained journal: nothing lost.
  EXPECT_GT(report.replayed_records, 0u);
  for (size_t t = report.resume_step; t < kSteps; ++t) {
    ASSERT_EQ(GatherStep(&rebooted, stream, t), reference[t])
        << "step " << t;
  }
}

TEST(DurableGuardTest, CorruptNewestSnapshotDegradesToOlderGeneration) {
  const CorruptedStream stream = MakeStream(229);
  const std::vector<std::vector<double>> reference = Reference(stream);
  const std::string dir = MakeTempDir();
  {
    DurableGuard guard(MakeInner(), MakeOptions(dir));
    for (size_t t = 0; t < 40; ++t) GatherStep(&guard, stream, t);
    guard.Drain();
  }

  // Bit-rot the newest snapshot generation at rest.
  durable::SnapshotStore store(dir, "snap", durable::SnapshotOptions{});
  const std::vector<uint64_t> gens = store.ListGenerations();
  ASSERT_GE(gens.size(), 2u);
  ASSERT_TRUE(fault::FlipFileBit(store.GenerationPath(gens.back()), 64, 2));

  DurableGuard rebooted(MakeInner(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  ASSERT_TRUE(report.restored);
  EXPECT_EQ(report.snapshot_seq, gens[gens.size() - 2]);
  EXPECT_EQ(report.skipped_generations, 1u);
  // The retained journal segments cover the gap up to the drained tail.
  EXPECT_EQ(report.resume_step, 40u);
  for (size_t t = report.resume_step; t < kSteps; ++t) {
    ASSERT_EQ(GatherStep(&rebooted, stream, t), reference[t])
        << "step " << t;
  }
}

TEST(DurableGuardTest, AllGenerationsCorruptReportsNotRestored) {
  const CorruptedStream stream = MakeStream(233);
  const std::string dir = MakeTempDir();
  {
    DurableGuard guard(MakeInner(), MakeOptions(dir));
    for (size_t t = 0; t < 20; ++t) GatherStep(&guard, stream, t);
    guard.Drain();
  }
  durable::SnapshotStore store(dir, "snap", durable::SnapshotOptions{});
  for (const uint64_t seq : store.ListGenerations()) {
    ASSERT_TRUE(fault::TruncateFile(store.GenerationPath(seq), 10));
  }
  DurableGuard rebooted(MakeInner(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  EXPECT_FALSE(report.restored);  // Caller streams from scratch — no crash,
  EXPECT_EQ(report.resume_step, 0u);  // no hang, no silent wrong answer.
  EXPECT_GE(report.skipped_generations, 2u);
}

TEST(DurableGuardTest, AsyncJournalOnAuxLaneMatchesInlineBitwise) {
  const CorruptedStream stream = MakeStream(239);
  const std::vector<std::vector<double>> reference = Reference(stream);
  const std::string dir = MakeTempDir();

  DurableGuard guard(MakeInner(), MakeOptions(dir));
  auto executor = std::make_shared<ShardExecutor>(2);
  guard.AdoptWorkerPool(executor);
  for (size_t t = 0; t < kSteps; ++t) {
    EXPECT_EQ(GatherStep(&guard, stream, t), reference[t]) << "step " << t;
  }
  guard.Drain();
  EXPECT_EQ(guard.telemetry().async_appends, kSteps);
  EXPECT_EQ(guard.telemetry().journal_failures, 0u);

  // The drained journal tail + snapshots recover to the exact stream end.
  DurableGuard rebooted(MakeInner(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  ASSERT_TRUE(report.restored);
  EXPECT_EQ(report.resume_step, kSteps);
}

TEST(DurableGuardTest, AuxLaneCrashSurfacesOnIngestThread) {
  const CorruptedStream stream = MakeStream(241);
  const std::string dir = MakeTempDir();
  DurableGuard guard(MakeInner(), MakeOptions(dir));
  auto executor = std::make_shared<ShardExecutor>(2);
  guard.AdoptWorkerPool(executor);

  fault::ScopedFaultPlan plan(
      {"journal.append", fault::FaultKind::kTornWrite, 10, 1, 0.5});
  bool crashed = false;
  try {
    for (size_t t = 0; t < kSteps; ++t) {
      GatherStep(&guard, stream, t);
    }
    guard.Drain();
  } catch (const fault::SimulatedCrash& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, "journal.append");
  }
  fault::Reset();
  EXPECT_TRUE(crashed);  // Parked by the aux shim, rethrown on this thread.
}

TEST(DurableGuardTest, ComposesOverStreamGuardAndRecoversBitwise) {
  // The production stack: DurableGuard(StreamGuard(method)). On a
  // trip-free stream the guard's rolling windows stay quiescent, so a
  // kill-recover cycle reproduces the uninterrupted composite bitwise.
  const CorruptedStream stream = MakeStream(251);
  const std::string dir = MakeTempDir();
  // Trip-free configuration: StreamGuard's rolling health windows are not
  // part of its checkpoint (PR 6 caveat), so bitwise recovery of the
  // composite holds exactly when no trip fires in either run.
  StreamGuardOptions guard_options;
  guard_options.payload_explosion_factor = 0.0;  // 0 disables the layer.
  guard_options.nre_spike_factor = 1e18;
  guard_options.norm_explosion_factor = 1e18;
  const auto make_composite = [&] {
    return std::make_unique<StreamGuard>(MakeInner(), guard_options);
  };

  std::vector<std::vector<double>> reference;
  {
    std::unique_ptr<StreamGuard> plain = make_composite();
    for (size_t t = 0; t < kSteps; ++t) {
      reference.push_back(GatherStep(plain.get(), stream, t));
    }
  }

  size_t crash_step = kSteps;
  {
    DurableGuard guard(make_composite(), MakeOptions(dir));
    fault::ScopedFaultPlan plan(
        {"journal.append", fault::FaultKind::kTornWrite, 30, 1, 0.5});
    try {
      for (size_t t = 0; t < kSteps; ++t) GatherStep(&guard, stream, t);
    } catch (const fault::SimulatedCrash&) {
      crash_step = guard.telemetry().steps;
    }
    fault::Reset();
    ASSERT_LT(crash_step, kSteps);
  }

  DurableGuard rebooted(make_composite(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  ASSERT_TRUE(report.restored);
  for (size_t t = report.resume_step; t < kSteps; ++t) {
    ASSERT_EQ(GatherStep(&rebooted, stream, t), reference[t])
        << "step " << t;
  }
}

TEST(DurableGuardTest, SnapshotIoErrorsDegradeWithoutDataLoss) {
  // Persistent EIO on snapshot writes: durability degrades (telemetry
  // says so) but the stream never stops, and the journal — still rooted
  // at the last good snapshot — recovers everything up to the drain.
  const CorruptedStream stream = MakeStream(257);
  const std::vector<std::vector<double>> reference = Reference(stream);
  const std::string dir = MakeTempDir();
  {
    DurableGuard guard(MakeInner(), MakeOptions(dir));
    for (size_t t = 0; t < 10; ++t) GatherStep(&guard, stream, t);
    guard.Drain();
    // From op 100 on (well past the early snapshots), every atomic write
    // fails — beyond the retry budget.
    fault::ScopedFaultPlan plan(
        {"atomic.write", fault::FaultKind::kIoError, 0, 1000000, 0.5});
    for (size_t t = 10; t < 30; ++t) {
      EXPECT_EQ(GatherStep(&guard, stream, t), reference[t]) << "step " << t;
    }
    guard.Drain();
    fault::Reset();
    EXPECT_GT(guard.telemetry().snapshot_failures, 0u);
  }
  DurableGuard rebooted(MakeInner(), MakeOptions(dir));
  const RecoveryReport report = rebooted.Recover();
  ASSERT_TRUE(report.restored);
  EXPECT_EQ(report.resume_step, 30u);
  for (size_t t = report.resume_step; t < kSteps; ++t) {
    ASSERT_EQ(GatherStep(&rebooted, stream, t), reference[t])
        << "step " << t;
  }
}

}  // namespace
}  // namespace sofia
