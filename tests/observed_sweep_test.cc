// Tests of the ObservedSweep solver core and its sparse_kernels primitives:
// observed-entry motifs vs the dense-scan reference kernels of
// baselines/common.hpp (≤1e-12), bitwise thread determinism, the mask-reuse
// and shared-pattern caches, and the CooList edges the baselines newly
// exercise (bucket-less builds, empty and full Ω).

#include <gtest/gtest.h>

#include <memory>

#include "baselines/common.hpp"
#include "baselines/observed_sweep.hpp"
#include "linalg/vector_ops.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

struct Problem {
  DenseTensor y;
  Mask omega;
  std::vector<Matrix> factors;
  std::vector<double> w;
};

Problem MakeProblem(const Shape& shape, size_t rank, double density,
                    uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.y = DenseTensor::RandomNormal(shape, rng);
  p.omega = BernoulliMask(shape, density, rng);
  for (size_t n = 0; n < shape.order(); ++n) {
    p.factors.push_back(Matrix::RandomNormal(shape.dim(n), rank, rng));
  }
  p.w = rng.NormalVector(rank);
  return p;
}

// --- CooList edges ---------------------------------------------------------

TEST(CooListEdgeTest, BucketlessBuildSkipsModeTables) {
  Rng rng(11);
  Shape shape({5, 4, 3});
  Mask omega = BernoulliMask(shape, 0.4, rng);
  CooList coo = CooList::Build(omega, /*with_mode_buckets=*/false);
  EXPECT_EQ(coo.nnz(), omega.CountObserved());
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    EXPECT_FALSE(coo.has_mode_bucket(mode));
  }
  // Records and gathers still work without the bucket tables.
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  std::vector<double> values = coo.Gather(y);
  ASSERT_EQ(values.size(), coo.nnz());
  for (size_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_EQ(values[k], y[coo.LinearIndex(k)]);
    std::vector<size_t> idx(coo.Coords(k), coo.Coords(k) + coo.order());
    EXPECT_EQ(shape.Linearize(idx), coo.LinearIndex(k));
  }
}

TEST(CooListEdgeTest, EmptyMaskYieldsZeroRecordsAndZeroSystems) {
  Shape shape({4, 3, 2});
  Mask omega(shape, false);
  CooList coo = CooList::Build(omega);
  EXPECT_EQ(coo.nnz(), 0u);

  Rng rng(13);
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::RandomNormal(shape.dim(n), 3, rng));
  }
  std::vector<double> none;
  NormalSystem sys = CooNormalSystem(coo, none, factors);
  EXPECT_EQ(sys.c.size(), 3u);
  EXPECT_EQ(sys.b.FrobeniusNorm(), 0.0);
  for (double v : sys.c) EXPECT_EQ(v, 0.0);

  std::vector<double> w = {1.0, -2.0, 0.5};
  RowSystems rows = CooWeightedRowSystems(coo, none, factors, w, 1);
  ASSERT_EQ(rows.b.size(), shape.dim(1));
  for (const Matrix& b : rows.b) EXPECT_EQ(b.FrobeniusNorm(), 0.0);

  ModeGradients g = CooModeGradients(coo, none, factors, w);
  for (const Matrix& grad : g.row_grads) EXPECT_EQ(grad.FrobeniusNorm(), 0.0);
  EXPECT_TRUE(CooKruskalGather(coo, factors, w).empty());
}

TEST(CooListEdgeTest, FullMaskCoversEveryEntry) {
  Shape shape({4, 3, 2});
  Mask omega(shape, true);
  CooList coo = CooList::Build(omega);
  EXPECT_EQ(coo.nnz(), shape.NumElements());
  for (size_t k = 0; k < coo.nnz(); ++k) EXPECT_EQ(coo.LinearIndex(k), k);
}

// --- Motifs vs the dense reference kernels ---------------------------------

TEST(ObservedSweepKernelsTest, NormalSystemMatchesDenseAccumulation) {
  Problem p = MakeProblem(Shape({6, 5, 4}), 3, 0.5, 21);
  CooList coo = CooList::Build(p.omega);
  std::vector<double> values = coo.Gather(p.y);
  NormalSystem sys = CooNormalSystem(coo, values, p.factors);

  // Brute force, in the dense-scan accumulation order.
  Matrix b_expected(3, 3);
  std::vector<double> c_expected(3, 0.0);
  std::vector<size_t> idx(p.y.order(), 0);
  for (size_t linear = 0; linear < p.y.NumElements(); ++linear) {
    if (p.omega.Get(linear)) {
      std::vector<double> h(3, 1.0);
      for (size_t l = 0; l < p.factors.size(); ++l) {
        for (size_t r = 0; r < 3; ++r) h[r] *= p.factors[l](idx[l], r);
      }
      for (size_t r = 0; r < 3; ++r) {
        c_expected[r] += p.y[linear] * h[r];
        for (size_t q = 0; q < 3; ++q) b_expected(r, q) += h[r] * h[q];
      }
    }
    p.y.shape().Next(&idx);
  }
  EXPECT_LE(sys.b.MaxAbsDiff(b_expected), 1e-12);
  EXPECT_LE(MaxAbsDiffVec(sys.c, c_expected), 1e-12);
}

TEST(ObservedSweepKernelsTest, WeightedRowSystemsMatchBuildSliceRowSystems) {
  Problem p = MakeProblem(Shape({6, 5, 4}), 4, 0.4, 23);
  CooList coo = CooList::Build(p.omega);
  std::vector<double> values = coo.Gather(p.y);
  for (size_t mode = 0; mode < p.factors.size(); ++mode) {
    RowSystems sparse =
        CooWeightedRowSystems(coo, values, p.factors, p.w, mode);
    SliceRowSystems dense =
        BuildSliceRowSystems(p.y, p.omega, nullptr, p.factors, p.w, mode);
    ASSERT_EQ(sparse.b.size(), dense.b.size());
    for (size_t i = 0; i < sparse.b.size(); ++i) {
      EXPECT_LE(sparse.b[i].MaxAbsDiff(dense.b[i]), 1e-12)
          << "mode=" << mode << " row=" << i;
      EXPECT_LE(MaxAbsDiffVec(sparse.c[i], dense.c[i]), 1e-12);
    }
  }
}

TEST(ObservedSweepKernelsTest, ModeGradientsMatchFactorGradients) {
  Problem p = MakeProblem(Shape({6, 5, 4}), 3, 0.4, 25);
  CooList coo = CooList::Build(p.omega);
  std::vector<double> values = coo.Gather(p.y);
  std::vector<double> residuals = CooKruskalGather(coo, p.factors, p.w);
  for (size_t k = 0; k < residuals.size(); ++k) {
    residuals[k] = values[k] - residuals[k];
  }
  ModeGradients sparse = CooModeGradients(coo, residuals, p.factors, p.w);

  std::vector<std::vector<double>> dense_traces;
  std::vector<Matrix> dense = FactorGradients(p.y, p.omega, nullptr,
                                              p.factors, p.w, &dense_traces);
  ASSERT_EQ(sparse.row_grads.size(), dense.size());
  for (size_t l = 0; l < dense.size(); ++l) {
    EXPECT_LE(sparse.row_grads[l].MaxAbsDiff(dense[l]), 1e-12) << "mode=" << l;
    EXPECT_LE(MaxAbsDiffVec(sparse.row_trace[l], dense_traces[l]), 1e-12);
  }
}

TEST(ObservedSweepKernelsTest, ProximalRowUpdatesMatchMaterializedSystems) {
  Problem p = MakeProblem(Shape({6, 5, 4}), 3, 0.3, 26);
  CooList coo = CooList::Build(p.omega);
  std::vector<double> values = coo.Gather(p.y);
  Rng rng(29);
  for (size_t mode = 0; mode < p.factors.size(); ++mode) {
    Matrix previous = Matrix::RandomNormal(p.factors[mode].rows(), 3, rng);
    for (double mu : {1.0, 0.25, 0.0}) {
      // Reference: materialized systems + the shared proximal helper.
      RowSystems sys = CooWeightedRowSystems(coo, values, p.factors, p.w,
                                             mode);
      Matrix expected = p.factors[mode];
      ApplyProximalRowUpdates(sys, previous, mu, &expected);
      // Fused kernel, serial and pooled (aliasing u with factors[mode] is
      // part of the contract, so solve into a copy inside a factor set).
      std::vector<Matrix> factors = p.factors;
      CooProximalRowUpdates(coo, values, factors, p.w, mode, previous, mu,
                            &factors[mode]);
      EXPECT_EQ(factors[mode].MaxAbsDiff(expected), 0.0)
          << "mode=" << mode << " mu=" << mu;
      ThreadPool pool(3);
      std::vector<Matrix> pooled = p.factors;
      CooProximalRowUpdates(coo, values, pooled, p.w, mode, previous, mu,
                            &pooled[mode], 1, &pool);
      EXPECT_EQ(pooled[mode].MaxAbsDiff(expected), 0.0);
    }
  }
}

TEST(ObservedSweepKernelsTest, KernelsAreBitwiseThreadDeterministic) {
  Problem p = MakeProblem(Shape({9, 8, 7}), 5, 0.6, 27);
  CooList coo = CooList::Build(p.omega);
  std::vector<double> values = coo.Gather(p.y);
  ThreadPool pool(4);

  NormalSystem serial_sys = CooNormalSystem(coo, values, p.factors);
  NormalSystem pooled_sys =
      CooNormalSystem(coo, values, p.factors, 1, &pool);
  EXPECT_EQ(serial_sys.b.MaxAbsDiff(pooled_sys.b), 0.0);
  EXPECT_EQ(MaxAbsDiffVec(serial_sys.c, pooled_sys.c), 0.0);

  for (size_t mode = 0; mode < p.factors.size(); ++mode) {
    RowSystems serial =
        CooWeightedRowSystems(coo, values, p.factors, p.w, mode);
    RowSystems pooled =
        CooWeightedRowSystems(coo, values, p.factors, p.w, mode, 1, &pool);
    for (size_t i = 0; i < serial.b.size(); ++i) {
      EXPECT_EQ(serial.b[i].MaxAbsDiff(pooled.b[i]), 0.0);
      EXPECT_EQ(MaxAbsDiffVec(serial.c[i], pooled.c[i]), 0.0);
    }
  }

  ModeGradients serial_g = CooModeGradients(coo, values, p.factors, p.w);
  ModeGradients pooled_g =
      CooModeGradients(coo, values, p.factors, p.w, 1, &pool);
  for (size_t l = 0; l < serial_g.row_grads.size(); ++l) {
    EXPECT_EQ(serial_g.row_grads[l].MaxAbsDiff(pooled_g.row_grads[l]), 0.0);
    EXPECT_EQ(MaxAbsDiffVec(serial_g.row_trace[l], pooled_g.row_trace[l]),
              0.0);
  }
}

// --- The ObservedSweep wrapper ---------------------------------------------

TEST(ObservedSweepTest, SolveTemporalRowMatchesDenseReference) {
  Problem p = MakeProblem(Shape({6, 5}), 3, 0.5, 31);
  ObservedSweep sweep;
  sweep.BeginStep(p.y, p.omega);
  std::vector<double> sparse =
      sweep.SolveTemporalRow(p.factors, sweep.values(), 1e-6);
  std::vector<double> dense =
      SolveTemporalRow(p.y, p.omega, nullptr, p.factors, 1e-6);
  EXPECT_LE(MaxAbsDiffVec(sparse, dense), 1e-12);
}

TEST(ObservedSweepTest, ReconstructMatchesKruskalSliceGather) {
  Problem p = MakeProblem(Shape({6, 5}), 3, 0.5, 33);
  ObservedSweep sweep;
  sweep.BeginStep(p.y, p.omega);
  std::vector<double> recon = sweep.Reconstruct(p.factors, p.w);
  DenseTensor slice = KruskalSlice(p.factors, p.w);
  ASSERT_EQ(recon.size(), sweep.nnz());
  for (size_t k = 0; k < recon.size(); ++k) {
    EXPECT_NEAR(recon[k], slice[sweep.pattern().LinearIndex(k)], 1e-12);
  }
}

TEST(ObservedSweepTest, IdenticalMasksReuseThePattern) {
  Rng rng(35);
  Shape shape({6, 5});
  Mask omega = BernoulliMask(shape, 0.5, rng);
  DenseTensor y1 = DenseTensor::RandomNormal(shape, rng);
  DenseTensor y2 = DenseTensor::RandomNormal(shape, rng);

  ObservedSweep sweep;
  sweep.BeginStep(y1, omega);
  EXPECT_EQ(sweep.pattern_builds(), 1u);
  const CooList* first = &sweep.pattern();
  sweep.BeginStep(y2, omega);  // Same mask, new values: no rebuild.
  EXPECT_EQ(sweep.pattern_builds(), 1u);
  EXPECT_EQ(&sweep.pattern(), first);
  EXPECT_EQ(sweep.values()[0], y2[sweep.pattern().LinearIndex(0)]);

  Mask other = BernoulliMask(shape, 0.5, rng);
  other.Set(0, !other.Get(0));  // Ensure it differs from omega somewhere.
  if (other == omega) other.Set(1, !other.Get(1));
  sweep.BeginStep(y1, other);
  EXPECT_EQ(sweep.pattern_builds(), 2u);
}

TEST(ObservedSweepTest, SharedPatternsSkipTheBuild) {
  Rng rng(37);
  Shape shape({6, 5});
  Mask omega = BernoulliMask(shape, 0.5, rng);
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  std::shared_ptr<const CooList> pattern = MakeSharedPattern(omega);

  ObservedSweep sweep;
  sweep.BeginStep(y, omega, pattern);
  EXPECT_EQ(sweep.pattern_builds(), 0u);
  EXPECT_EQ(&sweep.pattern(), pattern.get());
  // The adopted pattern seeds the reuse cache for later unshared steps.
  sweep.BeginStep(y, omega);
  EXPECT_EQ(sweep.pattern_builds(), 0u);
  EXPECT_EQ(&sweep.pattern(), pattern.get());
}

}  // namespace
}  // namespace sofia
