#include <gtest/gtest.h>

#include "baselines/batch_als.hpp"
#include "baselines/brst.hpp"
#include "baselines/common.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "eval/stream_runner.hpp"
#include "linalg/vector_ops.hpp"
#include "tensor/kruskal.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(8, 6, steps, 3, 8, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

// --- common.hpp kernels ---------------------------------------------------

TEST(BaselineCommonTest, SolveTemporalRowRecoversExactRow) {
  // With the true factors fixed, the LS temporal row must reproduce the
  // generating row exactly on fully observed data.
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, 10, 3, 5, 61);
  std::vector<Matrix> nontemporal = {syn.factors[0], syn.factors[1]};
  for (size_t t = 0; t < 10; ++t) {
    DenseTensor slice = syn.tensor.SliceLastMode(t);
    Mask omega(slice.shape(), true);
    std::vector<double> w =
        SolveTemporalRow(slice, omega, nullptr, nontemporal, 1e-12);
    std::vector<double> expected = syn.factors[2].RowVector(t);
    EXPECT_LT(MaxAbsDiffVec(w, expected), 1e-8) << "t=" << t;
  }
}

TEST(BaselineCommonTest, FactorGradientsVanishAtTruth) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, 10, 3, 5, 63);
  std::vector<Matrix> nontemporal = {syn.factors[0], syn.factors[1]};
  DenseTensor slice = syn.tensor.SliceLastMode(4);
  Mask omega(slice.shape(), true);
  std::vector<double> w = syn.factors[2].RowVector(4);
  std::vector<Matrix> grads =
      FactorGradients(slice, omega, nullptr, nontemporal, w);
  for (const Matrix& g : grads) {
    EXPECT_LT(g.FrobeniusNorm(), 1e-9);
  }
}

TEST(BaselineCommonTest, FactorGradientsMatchNumericalDifferences) {
  Rng rng(65);
  std::vector<Matrix> factors = {Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(3, 2, rng)};
  std::vector<double> w = rng.NormalVector(2);
  DenseTensor y = DenseTensor::RandomNormal(Shape({4, 3}), rng);
  Mask omega(y.shape(), true);
  omega.Set(5, false);  // Exercise the masked path.

  std::vector<Matrix> grads = FactorGradients(y, omega, nullptr, factors, w);

  auto loss = [&](const std::vector<Matrix>& f) {
    DenseTensor recon = KruskalSlice(f, w);
    double s = 0.0;
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      const double d = y[k] - recon[k];
      s += 0.5 * d * d;
    }
    return s;
  };
  const double h = 1e-6;
  for (size_t l = 0; l < factors.size(); ++l) {
    for (size_t i = 0; i < factors[l].rows(); ++i) {
      for (size_t r = 0; r < 2; ++r) {
        std::vector<Matrix> probe = factors;
        probe[l](i, r) += h;
        const double fp = loss(probe);
        probe[l](i, r) -= 2 * h;
        const double fm = loss(probe);
        // FactorGradients returns the *descent* direction accumulation
        // (resid * regressor), i.e. -dLoss/dU.
        EXPECT_NEAR(-(fp - fm) / (2 * h), grads[l](i, r), 1e-5);
      }
    }
  }
}

TEST(BaselineCommonTest, BuildSliceRowSystemsMatchesDirectAccumulation) {
  Rng rng(67);
  std::vector<Matrix> factors = {Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(3, 2, rng)};
  std::vector<double> w = rng.NormalVector(2);
  DenseTensor y = DenseTensor::RandomNormal(Shape({4, 3}), rng);
  Mask omega(y.shape(), true);
  SliceRowSystems sys = BuildSliceRowSystems(y, omega, nullptr, factors, w,
                                             /*mode=*/0);
  // Row 1 of mode 0: entries (1, j) for all j; regressor h = B_j ⊛ w.
  Matrix b_expected(2, 2);
  std::vector<double> c_expected(2, 0.0);
  for (size_t j = 0; j < 3; ++j) {
    std::vector<double> h = {factors[1](j, 0) * w[0],
                             factors[1](j, 1) * w[1]};
    const double value = y.At({1, j});
    for (size_t r = 0; r < 2; ++r) {
      c_expected[r] += value * h[r];
      for (size_t q = 0; q < 2; ++q) b_expected(r, q) += h[r] * h[q];
    }
  }
  EXPECT_LT(sys.b[1].MaxAbsDiff(b_expected), 1e-12);
  EXPECT_LT(MaxAbsDiffVec(sys.c[1], c_expected), 1e-12);
}

// --- streaming methods -----------------------------------------------------

/// Every streaming baseline should track a clean, stationary-season stream
/// after a burn-in period.
class StreamingBaselineTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<StreamingMethod> MakeMethod(const std::string& name) {
    if (name == "online_sgd") {
      return std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3});
    }
    if (name == "olstec") {
      return std::make_unique<Olstec>(OlstecOptions{.rank = 3});
    }
    if (name == "mast") {
      return std::make_unique<Mast>(MastOptions{.rank = 3});
    }
    if (name == "or_mstc") {
      return std::make_unique<OrMstc>(OrMstcOptions{.rank = 3});
    }
    return nullptr;
  }
};

TEST_P(StreamingBaselineTest, TracksCleanStreamAfterBurnIn) {
  std::vector<DenseTensor> truth = MakeTruth(60, 71);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 72);
  auto method = MakeMethod(GetParam());
  ASSERT_NE(method, nullptr);
  std::vector<double> nre;
  for (size_t t = 0; t < truth.size(); ++t) {
    DenseTensor imputed = method->Step(stream.slices[t], stream.masks[t]);
    if (t >= 40) nre.push_back(NormalizedResidualError(imputed, truth[t]));
  }
  EXPECT_LT(Mean(nre), 0.35) << GetParam();
}

TEST_P(StreamingBaselineTest, HandlesMissingEntries) {
  std::vector<DenseTensor> truth = MakeTruth(60, 73);
  CorruptedStream stream = Corrupt(truth, {30.0, 0.0, 0.0}, 74);
  auto method = MakeMethod(GetParam());
  std::vector<double> nre;
  for (size_t t = 0; t < truth.size(); ++t) {
    DenseTensor imputed = method->Step(stream.slices[t], stream.masks[t]);
    if (t >= 40) nre.push_back(NormalizedResidualError(imputed, truth[t]));
  }
  EXPECT_LT(Mean(nre), 0.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Methods, StreamingBaselineTest,
                         ::testing::Values("online_sgd", "olstec", "mast",
                                           "or_mstc"));

TEST(OrMstcTest, AbsorbsSparseOutliersBetterThanMast) {
  std::vector<DenseTensor> truth = MakeTruth(60, 75);
  CorruptedStream stream = Corrupt(truth, {0.0, 10.0, 4.0}, 76);
  OrMstc robust(OrMstcOptions{.rank = 3, .outlier_lambda = 2.0});
  Mast plain(MastOptions{.rank = 3});
  std::vector<double> nre_robust, nre_plain;
  for (size_t t = 0; t < truth.size(); ++t) {
    DenseTensor a = robust.Step(stream.slices[t], stream.masks[t]);
    DenseTensor b = plain.Step(stream.slices[t], stream.masks[t]);
    if (t >= 30) {
      nre_robust.push_back(NormalizedResidualError(a, truth[t]));
      nre_plain.push_back(NormalizedResidualError(b, truth[t]));
    }
  }
  EXPECT_LT(Mean(nre_robust), Mean(nre_plain));
}

TEST(BrstTest, EffectiveRankCollapsesUnderHeavyCorruption) {
  std::vector<DenseTensor> truth = MakeTruth(50, 77);
  CorruptedStream stream = Corrupt(truth, {50.0, 20.0, 5.0}, 78);
  BrstLite brst(BrstOptions{.rank = 5, .ard_strength = 10.0});
  for (size_t t = 0; t < truth.size(); ++t) {
    brst.Step(stream.slices[t], stream.masks[t]);
  }
  // The paper reports BRST degenerating to rank 0 on all streams; our lite
  // reimplementation reproduces the collapse dynamic.
  EXPECT_LT(brst.EffectiveRank(), 5u);
}

TEST(SmfTest, ForecastsSeasonalStream) {
  std::vector<DenseTensor> truth = MakeTruth(72, 79);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 80);
  Smf smf(SmfOptions{.rank = 3, .period = 8});
  const size_t train = 64;
  for (size_t t = 0; t < train; ++t) {
    smf.Step(stream.slices[t], stream.masks[t]);
  }
  std::vector<double> afe;
  for (size_t h = 1; h <= truth.size() - train; ++h) {
    afe.push_back(
        NormalizedResidualError(smf.Forecast(h), truth[train + h - 1]));
  }
  EXPECT_LT(Mean(afe), 0.5);
}

TEST(CphwTest, BatchFactorizationForecastsSeasonalStream) {
  std::vector<DenseTensor> truth = MakeTruth(56, 81);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 82);
  Cphw cphw(CphwOptions{.rank = 3, .period = 8});
  const size_t train = 48;
  for (size_t t = 0; t < train; ++t) {
    cphw.Step(stream.slices[t], stream.masks[t]);
  }
  std::vector<double> afe;
  for (size_t h = 1; h <= truth.size() - train; ++h) {
    afe.push_back(
        NormalizedResidualError(cphw.Forecast(h), truth[train + h - 1]));
  }
  EXPECT_LT(Mean(afe), 0.35);
}

TEST(BatchAlsTest, FactorizesIncompleteTensor) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, 20, 2, 5, 83);
  Mask omega(syn.tensor.shape(), true);
  Rng rng(84);
  for (size_t k = 0; k < omega.shape().NumElements(); ++k) {
    if (rng.Bernoulli(0.3)) omega.Set(k, false);
  }
  BatchAlsResult res =
      BatchAls(syn.tensor, omega, BatchAlsOptions{.rank = 2, .seed = 85});
  EXPECT_LT(NormalizedResidualError(res.completed, syn.tensor), 0.15);
  EXPECT_EQ(res.factors.size(), 3u);
}

}  // namespace
}  // namespace sofia
