// StreamGuard, the fault-tolerance wrapper:
//  - input validation rejects NaN payloads, empty omega, and shape
//    mismatches BEFORE the inner method sees them (call-counted on a fake);
//  - each degradation policy resolves health trips with the right state
//    action (skip / rollback / reinit);
//  - the acceptance pin: on the garbage-slice + bursty-outage scenario,
//    unguarded SOFIA ends non-finite (or an order of magnitude degraded)
//    while rollback-guarded SOFIA stays finite and closes every fault
//    episode within 3 steps;
//  - zero overhead on clean streams: guarded scores are bitwise identical
//    to unguarded ones, with exactly one O(|omega|) validation pass per
//    slice, zero estimate materializations, and zero trips.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/scenarios.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_guard.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t i1, size_t i2, size_t steps,
                                   uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(i1, i2, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

SofiaConfig SmallSofiaConfig() {
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  return config;
}

/// Records every slice that actually reaches it, split into data steps and
/// the empty-omega clock advances the guard issues for faulted slices.
class FakeMethod : public StreamingMethod {
 public:
  std::string name() const override { return "fake"; }
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern) override {
    (void)pattern;
    if (omega.CountObserved() > 0) {
      ++data_calls;
    } else {
      ++clock_calls;
    }
    return StepResult::Dense(DenseTensor(y.shape(), 0.0));
  }
  size_t data_calls = 0;
  size_t clock_calls = 0;
};

TEST(StreamGuardTest, ParseGuardPolicyRoundTrips) {
  for (GuardPolicy policy : {GuardPolicy::kSkipSlice, GuardPolicy::kRollback,
                             GuardPolicy::kReinit}) {
    EXPECT_EQ(ParseGuardPolicy(GuardPolicyName(policy)), policy);
  }
  EXPECT_DEATH(ParseGuardPolicy("panic"), "policy");
}

TEST(StreamGuardTest, InputFaultsNeverReachInnerMethod) {
  auto owned = std::make_unique<FakeMethod>();
  FakeMethod* fake = owned.get();
  StreamGuard guard(std::move(owned));

  const Shape shape({4, 3});
  DenseTensor clean(shape, 1.0);
  Mask full(shape, true);

  // Valid slice: forwarded.
  guard.StepLazy(clean, full);
  EXPECT_EQ(fake->data_calls, 1u);

  // NaN payload: rejected before the inner method — only the empty-omega
  // clock advance (zero data) reaches it.
  DenseTensor poisoned = clean;
  poisoned[5] = std::numeric_limits<double>::quiet_NaN();
  StepResult degraded = guard.StepLazy(poisoned, full);
  EXPECT_EQ(fake->data_calls, 1u);
  EXPECT_EQ(fake->clock_calls, 1u);
  EXPECT_TRUE(std::isfinite(degraded.at({1, 2})));

  // Inf payload.
  poisoned[5] = std::numeric_limits<double>::infinity();
  guard.StepLazy(poisoned, full);
  EXPECT_EQ(fake->data_calls, 1u);
  EXPECT_EQ(fake->clock_calls, 2u);

  // Empty omega.
  guard.StepLazy(clean, Mask(shape, false));
  EXPECT_EQ(fake->data_calls, 1u);
  EXPECT_EQ(fake->clock_calls, 3u);

  // Shape mismatch against the locked-in stream shape (the clock advance
  // happens at the locked-in shape, never the bad one).
  DenseTensor wrong(Shape({3, 3}), 1.0);
  guard.StepLazy(wrong, Mask(Shape({3, 3}), true));
  EXPECT_EQ(fake->data_calls, 1u);
  EXPECT_EQ(fake->clock_calls, 4u);

  // Mismatched y/omega shapes.
  guard.StepLazy(clean, Mask(Shape({3, 3}), true));
  EXPECT_EQ(fake->data_calls, 1u);
  EXPECT_EQ(fake->clock_calls, 5u);

  EXPECT_EQ(guard.telemetry().steps, 6u);
  EXPECT_EQ(guard.telemetry().input_trips, 5u);
  EXPECT_EQ(guard.telemetry().health_trips, 0u);
  EXPECT_EQ(guard.telemetry().skips, 5u);

  // Recovery: the next valid slice flows through again.
  guard.StepLazy(clean, full);
  EXPECT_EQ(fake->data_calls, 2u);
  EXPECT_EQ(fake->clock_calls, 5u);
}

/// Drives `guard` over a clean prefix, then a hugely scaled slice that
/// passes input validation but trips the health watch (the caller must
/// disable the payload-scale watch, which would otherwise catch it first).
void DriveIntoHealthTrip(StreamGuard* guard, const CorruptedStream& stream,
                         size_t prefix) {
  for (size_t t = 0; t < prefix; ++t) {
    guard->StepLazy(stream.slices[t], stream.masks[t]);
  }
  DenseTensor huge = stream.slices[prefix];
  for (size_t k = 0; k < huge.NumElements(); ++k) {
    huge[k] = (stream.max_abs + 1.0) * 1e9;
  }
  guard->StepLazy(huge, stream.masks[prefix]);
}

TEST(StreamGuardTest, PoliciesResolveHealthTripsWithTheRightStateAction) {
  std::vector<DenseTensor> truth = MakeTruth(6, 5, 12, 221);
  CorruptedStream stream = Corrupt(truth, {20.0, 0.0, 0.0}, 222);

  {
    StreamGuardOptions options;
    options.policy = GuardPolicy::kSkipSlice;
    options.payload_explosion_factor = 0.0;
    StreamGuard guard(
        std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}), options);
    DriveIntoHealthTrip(&guard, stream, 6);
    EXPECT_EQ(guard.telemetry().health_trips, 1u);
    EXPECT_EQ(guard.telemetry().skips, 1u);
    EXPECT_EQ(guard.telemetry().rollbacks, 0u);
    EXPECT_EQ(guard.telemetry().reinits, 0u);
  }
  {
    StreamGuardOptions options;
    options.policy = GuardPolicy::kRollback;
    options.payload_explosion_factor = 0.0;
    StreamGuard guard(
        std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}), options);
    DriveIntoHealthTrip(&guard, stream, 6);
    EXPECT_EQ(guard.telemetry().health_trips, 1u);
    EXPECT_EQ(guard.telemetry().rollbacks, 1u);
    EXPECT_EQ(guard.telemetry().reinits, 0u);
  }
  {
    StreamGuardOptions options;
    options.policy = GuardPolicy::kReinit;
    options.payload_explosion_factor = 0.0;
    StreamGuard guard(
        std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}), options);
    DriveIntoHealthTrip(&guard, stream, 6);
    EXPECT_EQ(guard.telemetry().health_trips, 1u);
    EXPECT_EQ(guard.telemetry().reinits, 1u);
    EXPECT_EQ(guard.telemetry().rollbacks, 0u);
  }
}

// ------------------------------------------------------- the acceptance pin

TEST(StreamGuardTest, GuardedSofiaRecoversWhereUnguardedDegrades) {
  // Garbage slices + bursty outages on top of element-wise corruption
  // (combined stress with the regime change and outlier bursts switched
  // off, so the faults are exactly the two modes the guard must absorb).
  const size_t steps = 40;
  std::vector<DenseTensor> truth = MakeTruth(8, 6, steps, 231);
  ScenarioOptions options;
  // Missingness only: element outliers would inflate the estimate-vs-y
  // probe baseline and mask the spike the huge-finite slice must produce.
  options.element = CorruptionSetting{20.0, 0.0, 0.0};
  options.regime_amplitude = 1.0;  // Identity regime transform.
  options.burst_start_prob = 0.0;  // No structured outlier bursts.
  options.garbage_offset = 16;     // Past SOFIA's 3 * period = 12 window.
  options.garbage_every = 12;      // Faults at steps 16 (NaN), 28 (huge).
  ScenarioStream scenario =
      MakeScenario(ScenarioKind::kCombinedStress, truth, options, 232);
  ASSERT_EQ(scenario.fault_steps, (std::vector<size_t>{16, 28}));

  SofiaStream unguarded(SmallSofiaConfig());
  StreamGuardOptions guard_options;
  guard_options.policy = GuardPolicy::kRollback;
  StreamGuard guarded(std::make_unique<SofiaStream>(SmallSofiaConfig()),
                      guard_options);

  StepResult::ResetMaterializations();
  std::vector<StreamingMethod*> methods = {&unguarded, &guarded};
  std::vector<MethodRunResult> results = RunImputationComparison(
      methods, scenario.stream, scenario.truth);
  // The guard never materializes an estimate, even while degrading.
  EXPECT_EQ(StepResult::materializations(), 0u);

  const StreamRunResult& u = results[0].run;
  const StreamRunResult& g = results[1].run;
  EXPECT_FALSE(results[0].run.guarded);
  ASSERT_TRUE(results[1].run.guarded);

  // Guarded: every score finite, every fault tripped the guard, and every
  // fault episode closed within 3 accepted steps.
  for (size_t t = 0; t < steps; ++t) {
    ASSERT_TRUE(std::isfinite(g.nre[t])) << "guarded NRE diverged at " << t;
  }
  const GuardTelemetry& telemetry = g.guard;
  // Both faults are caught at the input layer: the NaN slice at step 16 by
  // the finite scan, the huge-finite slice at 28 by the payload-scale
  // watch — SOFIA never sees either, so the health watch stays quiet.
  EXPECT_EQ(telemetry.input_trips, 2u);
  EXPECT_EQ(telemetry.health_trips, 0u);
  EXPECT_EQ(telemetry.recoveries,
            telemetry.input_trips + telemetry.health_trips)
      << "a fault episode never closed";
  ASSERT_EQ(telemetry.steps_to_recover.size(), 2u);
  for (size_t s : telemetry.steps_to_recover) {
    EXPECT_LE(s, 3u) << "recovery took more than 3 steps";
  }

  // Unguarded: the same stream leaves SOFIA non-finite or an order of
  // magnitude worse than the guarded run.
  bool unguarded_nonfinite = false;
  for (size_t t = 0; t < steps; ++t) {
    unguarded_nonfinite = unguarded_nonfinite || !std::isfinite(u.nre[t]);
  }
  EXPECT_TRUE(unguarded_nonfinite ||
              u.rae_post_init > 10.0 * g.rae_post_init)
      << "unguarded rae_post_init=" << u.rae_post_init
      << " guarded rae_post_init=" << g.rae_post_init;
}

// ------------------------------------------------------ zero-overhead pin

TEST(StreamGuardTest, CleanStreamsPayOnlyTheValidationScan) {
  const size_t steps = 24;
  std::vector<DenseTensor> truth = MakeTruth(6, 5, steps, 241);
  ScenarioStream scenario = MakeScenario(ScenarioKind::kClean, truth,
                                         ScenarioOptions{}, 242);

  SofiaStream plain(SmallSofiaConfig());
  StreamGuard guarded(std::make_unique<SofiaStream>(SmallSofiaConfig()));

  StepResult::ResetMaterializations();
  std::vector<StreamingMethod*> methods = {&plain, &guarded};
  std::vector<MethodRunResult> results = RunImputationComparison(
      methods, scenario.stream, scenario.truth);
  EXPECT_EQ(StepResult::materializations(), 0u);

  // Bitwise-identical scores: the guard observed, it never intervened.
  for (size_t t = 0; t < steps; ++t) {
    ASSERT_EQ(results[0].run.nre[t], results[1].run.nre[t]) << "t=" << t;
    ASSERT_EQ(results[0].run.observed_nre[t], results[1].run.observed_nre[t])
        << "t=" << t;
  }

  const GuardTelemetry& telemetry = results[1].run.guard;
  EXPECT_EQ(telemetry.input_trips, 0u);
  EXPECT_EQ(telemetry.health_trips, 0u);
  EXPECT_EQ(telemetry.skips, 0u);
  EXPECT_EQ(telemetry.rollbacks, 0u);
  EXPECT_EQ(telemetry.reinits, 0u);
  // Exactly one O(|omega|) validation pass per slice — init and stream.
  EXPECT_EQ(telemetry.validation_passes, steps);
  EXPECT_EQ(telemetry.steps + guarded.init_window(), steps);
  // Ring writes follow the default cadence: one checkpoint per
  // checkpoint_every accepted steps, not one per step.
  EXPECT_EQ(telemetry.checkpoints_saved,
            telemetry.steps / StreamGuardOptions{}.checkpoint_every);
}

// ------------------------------------------- checkpoint ring + walk-back

/// Checkpointable fake whose serialized state is a step counter, so a test
/// can read exactly which checkpoint a rollback restored. Returns accurate
/// estimates (probe NRE 0) until `poison` flips it to wildly wrong ones
/// that trip the health watch.
class VersionedFake : public StreamingMethod {
 public:
  std::string name() const override { return "versioned-fake"; }
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern) override {
    (void)pattern;
    if (omega.CountObserved() > 0) ++version;
    DenseTensor estimate = y;
    if (poison) {
      for (size_t k = 0; k < estimate.NumElements(); ++k) {
        estimate[k] = 1e6;
      }
    }
    return StepResult::Dense(std::move(estimate));
  }
  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override { out << version; }
  void RestoreState(std::istream& in) override {
    in >> version;
    restored.push_back(version);
  }

  size_t version = 0;            ///< Accepted data steps consumed.
  bool poison = false;           ///< Return garbage estimates (health trip).
  std::vector<size_t> restored;  ///< Version of every RestoreState, in order.
};

TEST(StreamGuardTest, RepeatedTripsWalkBackThroughStrictlyOlderCheckpoints) {
  auto owned = std::make_unique<VersionedFake>();
  VersionedFake* fake = owned.get();
  StreamGuardOptions options;
  options.policy = GuardPolicy::kRollback;
  options.checkpoint_every = 1;  // One ring write per accepted step.
  options.checkpoint_slots = 4;
  StreamGuard guard(std::move(owned), options);

  const Shape shape({3, 2});
  DenseTensor y(shape, 1.0);
  Mask full(shape, true);

  // Six clean steps: ring holds versions {5, 6, 3, 4} in rotation order.
  for (size_t t = 0; t < 6; ++t) guard.StepLazy(y, full);
  ASSERT_EQ(guard.telemetry().checkpoints_saved, 6u);

  // Five consecutive trips within one fault episode: the guard must walk
  // newest -> older through the whole ring (6, 5, 4, 3), then fall through
  // to the reinit snapshot (the pristine pre-first-step state, version 0) —
  // never re-restoring the same possibly-poisoned slot twice.
  fake->poison = true;
  for (size_t trip = 0; trip < 5; ++trip) guard.StepLazy(y, full);
  EXPECT_EQ(guard.telemetry().health_trips, 5u);
  EXPECT_EQ(fake->restored, (std::vector<size_t>{6, 5, 4, 3, 0}));
  EXPECT_EQ(guard.telemetry().rollbacks, 5u);
  EXPECT_EQ(guard.telemetry().reinits, 0u);

  // Recovery closes the episode; the next episode's walk-back restarts at
  // the (fresh) newest checkpoint instead of resuming at depth 5.
  fake->poison = false;
  for (size_t t = 0; t < 2; ++t) guard.StepLazy(y, full);
  EXPECT_EQ(guard.telemetry().recoveries, 1u);
  const size_t saved_after_recovery = guard.telemetry().checkpoints_saved;
  ASSERT_GT(saved_after_recovery, 6u);
  fake->poison = true;
  guard.StepLazy(y, full);
  fake->poison = false;
  ASSERT_EQ(fake->restored.size(), 6u);
  // The newest post-recovery checkpoint: version 0 after the reinit fall-
  // through, +2 accepted recovery steps.
  EXPECT_EQ(fake->restored.back(), 2u);
}

TEST(StreamGuardTest, CheckpointCadenceBoundsRollbackLossAndCountsWraps) {
  auto owned = std::make_unique<VersionedFake>();
  VersionedFake* fake = owned.get();
  StreamGuardOptions options;
  options.policy = GuardPolicy::kRollback;
  options.checkpoint_every = 3;
  options.checkpoint_slots = 2;  // Force ring wraparound.
  StreamGuard guard(std::move(owned), options);

  const Shape shape({3, 2});
  DenseTensor y(shape, 1.0);
  Mask full(shape, true);

  // 14 accepted steps at cadence 3: checkpoints after steps 3, 6, 9, 12 —
  // telemetry counts all four ring writes even though only two slots exist.
  for (size_t t = 0; t < 14; ++t) guard.StepLazy(y, full);
  EXPECT_EQ(guard.telemetry().checkpoints_saved, 4u);

  // A rollback restores the newest checkpoint (version 12): of the 14
  // accepted steps, at most cadence - 1 = 2 are lost.
  fake->poison = true;
  guard.StepLazy(y, full);
  fake->poison = false;
  ASSERT_EQ(fake->restored.size(), 1u);
  EXPECT_EQ(fake->restored.back(), 12u);
  EXPECT_GE(fake->restored.back() + options.checkpoint_every - 1, 14u);
}

}  // namespace
}  // namespace sofia
