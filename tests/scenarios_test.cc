// The adversarial scenario generators (data/scenarios.hpp):
//  - same (truth, options, seed) => bitwise-identical streams, including
//    the NaN payloads of garbage slices (memcmp-pinned);
//  - bursty-outage mask churn matches the recorded Markov flip counts, and
//    the comparison runner's SparseMask delta telemetry reports exactly
//    flips x row-volume per rebuild;
//  - regime change transforms the scoring truth from the change point on;
//  - structured outliers are whole-row, constant-offset bursts;
//  - garbage slices alternate NaN and huge-finite payloads at the recorded
//    fault steps;
//  - the name <-> kind mapping round-trips over the catalog.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "data/scenarios.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

bool BitwiseEqual(const DenseTensor& a, const DenseTensor& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.data(), b.data(),
                     a.NumElements() * sizeof(double)) == 0;
}

bool MasksEqual(const Mask& a, const Mask& b) {
  if (!(a.shape() == b.shape())) return false;
  for (size_t k = 0; k < a.shape().NumElements(); ++k) {
    if (a.Get(k) != b.Get(k)) return false;
  }
  return true;
}

TEST(ScenariosTest, NameKindRoundTripsOverCatalog) {
  for (ScenarioKind kind : ScenarioCatalog()) {
    EXPECT_EQ(ParseScenario(ScenarioName(kind)), kind);
  }
  EXPECT_DEATH(ParseScenario("definitely-not-a-scenario"), "scenario");
}

TEST(ScenariosTest, SameSeedIsBitwiseIdenticalForEveryScenario) {
  std::vector<DenseTensor> truth = MakeTruth(30, 171);
  ScenarioOptions options;
  for (ScenarioKind kind : ScenarioCatalog()) {
    SCOPED_TRACE(ScenarioName(kind));
    ScenarioStream a = MakeScenario(kind, truth, options, 172);
    ScenarioStream b = MakeScenario(kind, truth, options, 172);
    ASSERT_EQ(a.stream.slices.size(), b.stream.slices.size());
    for (size_t t = 0; t < a.stream.slices.size(); ++t) {
      // memcmp, not ==: NaN garbage payloads must match bit for bit too.
      EXPECT_TRUE(BitwiseEqual(a.stream.slices[t], b.stream.slices[t]))
          << "t=" << t;
      EXPECT_TRUE(MasksEqual(a.stream.masks[t], b.stream.masks[t]))
          << "t=" << t;
      EXPECT_TRUE(BitwiseEqual(a.truth[t], b.truth[t])) << "t=" << t;
    }
    EXPECT_EQ(a.fault_steps, b.fault_steps);
    EXPECT_EQ(a.outage_flips, b.outage_flips);
    EXPECT_EQ(a.regime_step, b.regime_step);

    // A different seed moves the stochastic scenarios (regime change is the
    // only purely deterministic transform beyond the element substrate).
    ScenarioStream c = MakeScenario(kind, truth, options, 173);
    bool any_diff = false;
    for (size_t t = 0; t < a.stream.slices.size() && !any_diff; ++t) {
      any_diff = !BitwiseEqual(a.stream.slices[t], c.stream.slices[t]) ||
                 !MasksEqual(a.stream.masks[t], c.stream.masks[t]);
    }
    EXPECT_TRUE(any_diff);
  }
}

TEST(ScenariosTest, OutageFlipsMatchMaskChurnAndRunnerDeltaTelemetry) {
  std::vector<DenseTensor> truth = MakeTruth(24, 181);
  ScenarioOptions options;
  // Pure outages: no element-wise missingness, so the mask delta between
  // consecutive steps is exactly the flipped rows.
  options.element = CorruptionSetting{0.0, 0.0, 0.0};
  options.outage_fail_prob = 0.15;
  options.outage_recover_prob = 0.5;
  ScenarioStream scenario =
      MakeScenario(ScenarioKind::kBurstyOutage, truth, options, 182);

  ASSERT_EQ(scenario.outage_flips.size(), truth.size());
  size_t total_flips = 0;
  for (size_t f : scenario.outage_flips) total_flips += f;
  ASSERT_GT(total_flips, 0u) << "outage chain never moved; raise the probs";

  // Row volume of mode 0: a 6x5 slice changes 5 entries per flipped row.
  const size_t row_volume = truth[0].shape().NumElements() /
                            truth[0].shape().dim(0);
  std::vector<size_t> expected_deltas;
  for (size_t t = 1; t < scenario.outage_flips.size(); ++t) {
    if (scenario.outage_flips[t] > 0) {
      expected_deltas.push_back(scenario.outage_flips[t] * row_volume);
    }
  }

  OnlineSgd method(OnlineSgdOptions{.rank = 3});
  std::vector<StreamingMethod*> methods = {&method};
  std::vector<MethodRunResult> results = RunImputationComparison(
      methods, scenario.stream, scenario.truth);
  EXPECT_EQ(results[0].run.pattern_delta_sizes, expected_deltas)
      << "runner mask-delta telemetry disagrees with the Markov churn";
  EXPECT_EQ(results[0].run.pattern_builds + results[0].run.pattern_reuses,
            truth.size());
}

TEST(ScenariosTest, RegimeChangeTransformsScoringTruthFromChangePoint) {
  std::vector<DenseTensor> truth = MakeTruth(20, 191);
  ScenarioOptions options;
  options.regime_fraction = 0.5;
  options.regime_amplitude = 3.0;
  ScenarioStream scenario =
      MakeScenario(ScenarioKind::kRegimeChange, truth, options, 192);

  EXPECT_EQ(scenario.regime_step, 10u);
  for (size_t t = 0; t < truth.size(); ++t) {
    for (size_t k = 0; k < truth[t].NumElements(); ++k) {
      const double expected =
          t < scenario.regime_step ? truth[t][k] : 3.0 * truth[t][k];
      ASSERT_EQ(scenario.truth[t][k], expected) << "t=" << t << " k=" << k;
    }
  }
}

TEST(ScenariosTest, StructuredOutliersAreConstantRowAlignedBursts) {
  std::vector<DenseTensor> truth = MakeTruth(30, 201);
  ScenarioOptions options;
  options.element = CorruptionSetting{0.0, 0.0, 0.0};  // Isolate the bursts.
  options.burst_start_prob = 0.1;
  ScenarioStream scenario =
      MakeScenario(ScenarioKind::kStructuredOutliers, truth, options, 202);

  const Shape& shape = truth[0].shape();
  size_t outlier_entries = 0;
  for (size_t t = 0; t < truth.size(); ++t) {
    // Within one step, every entry of an outlier row carries one shared
    // offset; rows without outliers match the truth exactly.
    for (size_t i = 0; i < shape.dim(0); ++i) {
      double row_offset = 0.0;
      bool row_is_outlier = false;
      for (size_t j = 0; j < shape.dim(1); ++j) {
        const size_t linear = shape.Linearize({i, j});
        if (scenario.stream.outlier_positions[t].Get(linear)) {
          row_is_outlier = true;
          row_offset = scenario.stream.slices[t][linear] - truth[t][linear];
          break;
        }
      }
      for (size_t j = 0; j < shape.dim(1); ++j) {
        const size_t linear = shape.Linearize({i, j});
        const double expected =
            truth[t][linear] + (row_is_outlier ? row_offset : 0.0);
        ASSERT_NEAR(scenario.stream.slices[t][linear], expected, 1e-12)
            << "t=" << t << " i=" << i << " j=" << j;
        if (row_is_outlier) ++outlier_entries;
      }
      if (row_is_outlier) {
        EXPECT_NEAR(std::fabs(row_offset),
                    options.burst_magnitude * scenario.stream.max_abs, 1e-9);
      }
    }
  }
  EXPECT_GT(outlier_entries, 0u) << "no burst fired; raise burst_start_prob";
}

TEST(ScenariosTest, GarbageSlicesAlternateNanAndHugeAtRecordedSteps) {
  std::vector<DenseTensor> truth = MakeTruth(44, 211);
  ScenarioOptions options;
  options.garbage_offset = 16;
  options.garbage_every = 12;
  ScenarioStream scenario =
      MakeScenario(ScenarioKind::kGarbageSlices, truth, options, 212);

  EXPECT_EQ(scenario.fault_steps, (std::vector<size_t>{16, 28, 40}));
  for (size_t f = 0; f < scenario.fault_steps.size(); ++f) {
    const size_t t = scenario.fault_steps[f];
    const DenseTensor& slice = scenario.stream.slices[t];
    const Mask& mask = scenario.stream.masks[t];
    const bool expect_nan = (f % 2 == 0);
    for (size_t k = 0; k < slice.NumElements(); ++k) {
      if (!mask.Get(k)) continue;
      if (expect_nan) {
        ASSERT_TRUE(std::isnan(slice[k])) << "t=" << t << " k=" << k;
      } else {
        ASSERT_TRUE(std::isfinite(slice[k]));
        ASSERT_GE(std::fabs(slice[k]),
                  options.garbage_magnitude *
                      std::max(scenario.stream.max_abs, 1.0) * 0.999);
      }
    }
  }
  // Non-fault steps keep their (element-corrupted) payloads finite.
  for (size_t t = 0; t < truth.size(); ++t) {
    if (std::find(scenario.fault_steps.begin(), scenario.fault_steps.end(),
                  t) != scenario.fault_steps.end()) {
      continue;
    }
    for (size_t k = 0; k < scenario.stream.slices[t].NumElements(); ++k) {
      if (scenario.stream.masks[t].Get(k)) {
        ASSERT_TRUE(std::isfinite(scenario.stream.slices[t][k]))
            << "t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace sofia
