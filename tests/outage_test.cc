#include <gtest/gtest.h>

#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "data/synthetic.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  return MakeScalabilityStream(10, 8, steps, 3, 8, seed);
}

TEST(OutageTest, OutagesDropWholeRows) {
  std::vector<DenseTensor> truth = MakeTruth(60, 71);
  OutageSetting outages;
  outages.outage_start_prob = 0.05;
  outages.outage_length = 4;
  CorruptedStream stream =
      CorruptWithOutages(truth, {0.0, 0.0, 0.0}, outages, 72);

  // Every mask must be "row-consistent": within a step, a mode-0 row is
  // either fully present or fully absent (no element-wise missingness was
  // requested).
  const Shape& shape = truth[0].shape();
  size_t outage_rows = 0;
  for (const Mask& mask : stream.masks) {
    for (size_t i = 0; i < shape.dim(0); ++i) {
      size_t present = 0;
      for (size_t j = 0; j < shape.dim(1); ++j) {
        if (mask.At({i, j})) ++present;
      }
      EXPECT_TRUE(present == 0 || present == shape.dim(1))
          << "row " << i << " partially missing";
      if (present == 0) ++outage_rows;
    }
  }
  EXPECT_GT(outage_rows, 0u) << "no outages triggered at all";
}

TEST(OutageTest, OutagesPersistForConfiguredLength) {
  std::vector<DenseTensor> truth = MakeTruth(120, 73);
  OutageSetting outages;
  outages.outage_start_prob = 0.01;
  outages.outage_length = 6;
  CorruptedStream stream =
      CorruptWithOutages(truth, {0.0, 0.0, 0.0}, outages, 74);

  // Scan row 0..n for runs of fully-missing steps; every maximal run must
  // be at least the configured length (possibly longer if restarted).
  const Shape& shape = truth[0].shape();
  for (size_t i = 0; i < shape.dim(0); ++i) {
    size_t run = 0;
    for (size_t t = 0; t < stream.masks.size(); ++t) {
      bool all_missing = true;
      for (size_t j = 0; j < shape.dim(1); ++j) {
        if (stream.masks[t].At({i, j})) all_missing = false;
      }
      if (all_missing) {
        ++run;
      } else {
        if (run > 0) EXPECT_GE(run, outages.outage_length);
        run = 0;
      }
    }
  }
}

TEST(OutageTest, ComposesWithElementwiseCorruption) {
  std::vector<DenseTensor> truth = MakeTruth(60, 75);
  OutageSetting outages;
  outages.outage_start_prob = 0.03;
  outages.outage_length = 3;
  CorruptedStream with_elementwise =
      CorruptWithOutages(truth, {30.0, 10.0, 3.0}, outages, 76);
  CorruptedStream only_outages =
      CorruptWithOutages(truth, {0.0, 0.0, 0.0}, outages, 76);
  // Element-wise missingness strictly reduces the observed count.
  size_t observed_a = 0, observed_b = 0;
  for (size_t t = 0; t < truth.size(); ++t) {
    observed_a += with_elementwise.masks[t].CountObserved();
    observed_b += only_outages.masks[t].CountObserved();
  }
  EXPECT_LT(observed_a, observed_b);
}

TEST(OutageTest, SofiaImputesThroughSensorOutages) {
  // End-to-end: whole sensors disappear for stretches; SOFIA's seasonal
  // model carries them through.
  Dataset d = MakeIntelLabSensor(DatasetScale::kSmall);
  d.slices.resize(6 * d.period);
  OutageSetting outages;
  outages.outage_start_prob = 0.02;
  outages.outage_length = 8;
  CorruptedStream stream =
      CorruptWithOutages(d.slices, {10.0, 10.0, 3.0}, outages, 77);

  SofiaStream method(MakeExperimentConfig(d, stream));
  StreamRunResult res = RunImputation(&method, stream, d.slices);
  EXPECT_LT(res.rae, 0.6);
}

}  // namespace
}  // namespace sofia
