#include "timeseries/period.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<double> Sinusoid(size_t n, size_t m, double noise,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t t = 0; t < n; ++t) {
    y[t] = std::sin(kTwoPi * static_cast<double>(t) /
                    static_cast<double>(m)) +
           rng.Normal(0.0, noise);
  }
  return y;
}

TEST(AutocorrelationTest, PerfectAtFullPeriodZeroAtHalf) {
  std::vector<double> y = Sinusoid(240, 12, 0.0, 1);
  EXPECT_GT(Autocorrelation(y, 12), 0.95);
  EXPECT_LT(Autocorrelation(y, 6), -0.9);  // Anti-phase at half period.
}

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  Rng rng(2);
  std::vector<double> y = rng.NormalVector(2000);
  EXPECT_NEAR(Autocorrelation(y, 7), 0.0, 0.08);
}

class PeriodDetectionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PeriodDetectionTest, FindsTruePeriod) {
  const size_t m = GetParam();
  std::vector<double> y = Sinusoid(20 * m, m, 0.15, 3 + m);
  EXPECT_EQ(EstimatePeriod(y, 2, 3 * m), m);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodDetectionTest,
                         ::testing::Values(5, 7, 12, 24));

TEST(PeriodDetectionTest, ToleratesMissingData) {
  const size_t m = 12;
  std::vector<double> y = Sinusoid(30 * m, m, 0.1, 9);
  Rng rng(10);
  std::vector<bool> observed(y.size(), true);
  for (size_t i = 0; i < y.size(); ++i) {
    if (rng.Bernoulli(0.4)) observed[i] = false;  // 40% missing.
  }
  EXPECT_EQ(EstimatePeriod(y, 2, 3 * m, &observed), m);
}

TEST(PeriodDetectionTest, WorksOnGeneratedSeasonalSeries) {
  // The dataset simulators' own series generator must be self-consistent.
  std::vector<double> y = MakeSeasonalSeries(400, 24, 1.0, 0.02, 0.0, 11);
  EXPECT_EQ(EstimatePeriod(y, 2, 60), 24u);
}

TEST(PeriodDetectionTest, TooShortSeriesReturnsZero) {
  std::vector<double> y = Sinusoid(20, 12, 0.0, 12);
  EXPECT_EQ(EstimatePeriod(y, 2, 24), 0u);
}

}  // namespace
}  // namespace sofia
