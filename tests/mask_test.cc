#include "tensor/mask.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sofia {
namespace {

TEST(MaskTest, AllObservedByDefault) {
  Mask m(Shape({3, 4}));
  EXPECT_EQ(m.CountObserved(), 12u);
  EXPECT_DOUBLE_EQ(m.ObservedFraction(), 1.0);
}

TEST(MaskTest, SetAndGet) {
  Mask m(Shape({2, 2}), false);
  EXPECT_EQ(m.CountObserved(), 0u);
  m.Set(3, true);
  EXPECT_TRUE(m.Get(3));
  EXPECT_TRUE(m.At({1, 1}));
  EXPECT_EQ(m.ObservedIndices(), (std::vector<size_t>{3}));
}

TEST(MaskTest, ApplyZeroesUnobserved) {
  DenseTensor t(Shape({2, 2}), 5.0);
  Mask m(Shape({2, 2}), false);
  m.Set(1, true);
  DenseTensor masked = m.Apply(t);
  EXPECT_DOUBLE_EQ(masked[0], 0.0);
  EXPECT_DOUBLE_EQ(masked[1], 5.0);
}

TEST(MaskTest, MaskedFrobeniusNormMatchesApply) {
  DenseTensor t(Shape({3, 3}));
  for (size_t k = 0; k < 9; ++k) t[k] = static_cast<double>(k) - 4.0;
  Mask m(Shape({3, 3}), false);
  m.Set(0, true);
  m.Set(4, true);
  m.Set(8, true);
  EXPECT_NEAR(m.MaskedFrobeniusNorm(t), m.Apply(t).FrobeniusNorm(), 1e-12);
}

TEST(MaskTest, StackAndSliceRoundtrip) {
  Mask a(Shape({2, 2}), true);
  Mask b(Shape({2, 2}), false);
  b.Set(2, true);
  Mask stacked = Mask::StackSlices({a, b});
  EXPECT_EQ(stacked.shape().dims(), (std::vector<size_t>{2, 2, 2}));
  EXPECT_EQ(stacked.CountObserved(), 5u);
  Mask b_back = stacked.SliceLastMode(1);
  EXPECT_EQ(b_back.CountObserved(), 1u);
  EXPECT_TRUE(b_back.Get(2));
}

TEST(MaskTest, CountCacheTracksMutation) {
  // CountObserved is cached; Set() invalidates; every construction path
  // (fill, stack, slice) reports the true count afterwards.
  Mask m(Shape({4, 4}), false);
  EXPECT_EQ(m.CountObserved(), 0u);
  m.Set(3, true);
  EXPECT_EQ(m.CountObserved(), 1u);
  m.Set(3, false);
  m.Set(5, true);
  m.Set(6, true);
  EXPECT_EQ(m.CountObserved(), 2u);
  Mask copy = m;  // The cache travels with copies.
  EXPECT_EQ(copy.CountObserved(), 2u);
  copy.Set(7, true);
  EXPECT_EQ(copy.CountObserved(), 3u);
  EXPECT_EQ(m.CountObserved(), 2u);
}

TEST(MaskTest, ContentHashTracksMutationAndMatchesEquality) {
  Mask a(Shape({4, 4}), false);
  Mask b(Shape({4, 4}), false);
  a.Set(3, true);
  b.Set(3, true);
  EXPECT_EQ(a.ContentHash(), b.ContentHash());  // Equal masks hash equal.
  const uint64_t before = a.ContentHash();
  a.Set(7, true);
  EXPECT_NE(a.ContentHash(), before);  // Set() invalidates the cache.
  a.Set(7, false);
  EXPECT_EQ(a.ContentHash(), before);  // Content-determined, not history.
  EXPECT_NE(a.ContentHash(), Mask(Shape({4, 4}), false).ContentHash());
}

TEST(MaskTest, HashRejectsLateMismatchWithoutDeepScan) {
  // Two same-count masks differing only in their last entries: the count
  // check cannot separate them, and the byte compare would scan almost the
  // whole volume before failing. With both content hashes cached the
  // compare rejects in O(1) — pinned via the deep-scan counter.
  Mask a(Shape({64, 64}), false);
  Mask b(Shape({64, 64}), false);
  a.Set(0, true);
  a.Set(64 * 64 - 1, true);
  b.Set(0, true);
  b.Set(64 * 64 - 2, true);
  EXPECT_EQ(a.CountObserved(), b.CountObserved());  // Prime the counts.
  a.ContentHash();                                  // Prime the hashes.
  b.ContentHash();
  Mask::ResetDeepEqualityScans();
  EXPECT_TRUE(a != b);
  EXPECT_EQ(Mask::deep_equality_scans(), 0u);
  // Genuinely equal masks still pay (exactly) the one confirming scan.
  Mask c = a;
  c.ContentHash();
  EXPECT_TRUE(a == c);
  EXPECT_EQ(Mask::deep_equality_scans(), 1u);
  // Uncached hashes fall back to the byte scan rather than computing
  // full-volume hashes inside the compare.
  Mask d(Shape({64, 64}), false);
  Mask e(Shape({64, 64}), false);
  d.Set(5, true);
  e.Set(6, true);
  Mask::ResetDeepEqualityScans();
  EXPECT_TRUE(d != e);
  EXPECT_EQ(Mask::deep_equality_scans(), 1u);
}

TEST(MaskTest, EqualityEarlyExitsOnCachedCounts) {
  // Masks with cached, different observed counts must compare unequal
  // (the O(1) reject of the mask-reuse caches) — and equal-count masks
  // still fall through to the exact byte comparison.
  Mask a(Shape({8, 8}), false);
  Mask b(Shape({8, 8}), false);
  a.Set(0, true);
  b.Set(0, true);
  b.Set(1, true);
  EXPECT_EQ(a.CountObserved(), 1u);  // Prime both caches.
  EXPECT_EQ(b.CountObserved(), 2u);
  EXPECT_TRUE(a != b);
  b.Set(1, false);
  EXPECT_TRUE(a == b);
  // Same count, different support: the byte scan must still catch it.
  Mask c(Shape({8, 8}), false);
  c.Set(5, true);
  EXPECT_EQ(c.CountObserved(), 1u);
  EXPECT_TRUE(a != c);
  // Shape mismatch rejects before anything else.
  EXPECT_TRUE(a != Mask(Shape({8, 9}), false));
}

}  // namespace
}  // namespace sofia
