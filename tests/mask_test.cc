#include "tensor/mask.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sofia {
namespace {

TEST(MaskTest, AllObservedByDefault) {
  Mask m(Shape({3, 4}));
  EXPECT_EQ(m.CountObserved(), 12u);
  EXPECT_DOUBLE_EQ(m.ObservedFraction(), 1.0);
}

TEST(MaskTest, SetAndGet) {
  Mask m(Shape({2, 2}), false);
  EXPECT_EQ(m.CountObserved(), 0u);
  m.Set(3, true);
  EXPECT_TRUE(m.Get(3));
  EXPECT_TRUE(m.At({1, 1}));
  EXPECT_EQ(m.ObservedIndices(), (std::vector<size_t>{3}));
}

TEST(MaskTest, ApplyZeroesUnobserved) {
  DenseTensor t(Shape({2, 2}), 5.0);
  Mask m(Shape({2, 2}), false);
  m.Set(1, true);
  DenseTensor masked = m.Apply(t);
  EXPECT_DOUBLE_EQ(masked[0], 0.0);
  EXPECT_DOUBLE_EQ(masked[1], 5.0);
}

TEST(MaskTest, MaskedFrobeniusNormMatchesApply) {
  DenseTensor t(Shape({3, 3}));
  for (size_t k = 0; k < 9; ++k) t[k] = static_cast<double>(k) - 4.0;
  Mask m(Shape({3, 3}), false);
  m.Set(0, true);
  m.Set(4, true);
  m.Set(8, true);
  EXPECT_NEAR(m.MaskedFrobeniusNorm(t), m.Apply(t).FrobeniusNorm(), 1e-12);
}

TEST(MaskTest, StackAndSliceRoundtrip) {
  Mask a(Shape({2, 2}), true);
  Mask b(Shape({2, 2}), false);
  b.Set(2, true);
  Mask stacked = Mask::StackSlices({a, b});
  EXPECT_EQ(stacked.shape().dims(), (std::vector<size_t>{2, 2, 2}));
  EXPECT_EQ(stacked.CountObserved(), 5u);
  Mask b_back = stacked.SliceLastMode(1);
  EXPECT_EQ(b_back.CountObserved(), 1u);
  EXPECT_TRUE(b_back.Get(2));
}

}  // namespace
}  // namespace sofia
