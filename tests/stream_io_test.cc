#include "data/stream_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/corruption.hpp"
#include "data/synthetic.hpp"

namespace sofia {
namespace {

TensorStream MakeStream(uint64_t seed, double missing) {
  std::vector<DenseTensor> truth = MakeScalabilityStream(5, 4, 12, 2, 4, seed);
  CorruptedStream corrupted = Corrupt(truth, {missing, 0.0, 0.0}, seed + 1);
  return TensorStream{std::move(corrupted.slices),
                      std::move(corrupted.masks)};
}

TEST(StreamIoTest, RoundtripFullyObserved) {
  TensorStream original = MakeStream(1, 0.0);
  std::stringstream buffer;
  WriteStreamCsv(buffer, original);
  TensorStream restored = ReadStreamCsv(buffer);

  ASSERT_EQ(restored.slices.size(), original.slices.size());
  for (size_t t = 0; t < original.slices.size(); ++t) {
    DenseTensor diff = restored.slices[t] - original.slices[t];
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0) << "t=" << t;
    EXPECT_EQ(restored.masks[t].CountObserved(),
              original.masks[t].CountObserved());
  }
}

TEST(StreamIoTest, RoundtripPreservesMissingness) {
  TensorStream original = MakeStream(3, 40.0);
  std::stringstream buffer;
  WriteStreamCsv(buffer, original);
  TensorStream restored = ReadStreamCsv(buffer);
  for (size_t t = 0; t < original.slices.size(); ++t) {
    for (size_t k = 0; k < original.slices[t].NumElements(); ++k) {
      EXPECT_EQ(restored.masks[t].Get(k), original.masks[t].Get(k));
      if (original.masks[t].Get(k)) {
        EXPECT_DOUBLE_EQ(restored.slices[t][k], original.slices[t][k]);
      }
    }
  }
}

TEST(StreamIoTest, ParsesHandWrittenRecords) {
  std::stringstream in(
      "# shape 2 3 4\n"
      "0,0,0,1.5\n"
      "0,1,2,-2.25\n"
      "# a comment line\n"
      "3,1,1,7\n");
  TensorStream stream = ReadStreamCsv(in);
  ASSERT_EQ(stream.slices.size(), 4u);
  EXPECT_DOUBLE_EQ(stream.slices[0].At({0, 0}), 1.5);
  EXPECT_DOUBLE_EQ(stream.slices[0].At({1, 2}), -2.25);
  EXPECT_DOUBLE_EQ(stream.slices[3].At({1, 1}), 7.0);
  EXPECT_EQ(stream.masks[0].CountObserved(), 2u);
  EXPECT_EQ(stream.masks[1].CountObserved(), 0u);
  EXPECT_EQ(stream.masks[3].CountObserved(), 1u);
}

TEST(StreamIoTest, DuplicateRecordsKeepLastValue) {
  std::stringstream in(
      "# shape 2 2 1\n"
      "0,1,1,3.0\n"
      "0,1,1,9.0\n");
  TensorStream stream = ReadStreamCsv(in);
  EXPECT_DOUBLE_EQ(stream.slices[0].At({1, 1}), 9.0);
  EXPECT_EQ(stream.masks[0].CountObserved(), 1u);
}

TEST(StreamIoTest, FileRoundtrip) {
  TensorStream original = MakeStream(5, 25.0);
  const std::string path = "/tmp/sofia_stream_io_test.csv";
  ASSERT_TRUE(WriteStreamCsvFile(path, original));
  TensorStream restored = ReadStreamCsvFile(path);
  std::remove(path.c_str());
  ASSERT_EQ(restored.slices.size(), original.slices.size());
  for (size_t t = 0; t < original.slices.size(); ++t) {
    DenseTensor masked_a = original.masks[t].Apply(original.slices[t]);
    DenseTensor masked_b = restored.masks[t].Apply(restored.slices[t]);
    DenseTensor diff = masked_a - masked_b;
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
  }
}

TEST(StreamIoTest, RejectsMissingHeader) {
  std::stringstream in("0,0,0,1.0\n");
  EXPECT_DEATH(ReadStreamCsv(in), "header");
}

TEST(StreamIoTest, RejectsOutOfRangeIndices) {
  std::stringstream in(
      "# shape 2 2 2\n"
      "0,5,0,1.0\n");
  EXPECT_DEATH(ReadStreamCsv(in), "out of range");
}

}  // namespace
}  // namespace sofia
