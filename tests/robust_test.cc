#include "timeseries/robust.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sofia {
namespace {

TEST(HuberPsiTest, IdentityInsideCap) {
  EXPECT_DOUBLE_EQ(HuberPsi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(HuberPsi(1.5), 1.5);
  EXPECT_DOUBLE_EQ(HuberPsi(-1.9), -1.9);
}

TEST(HuberPsiTest, ClipsOutsideCap) {
  EXPECT_DOUBLE_EQ(HuberPsi(5.0), 2.0);
  EXPECT_DOUBLE_EQ(HuberPsi(-100.0), -2.0);
  EXPECT_DOUBLE_EQ(HuberPsi(3.0, 1.0), 1.0);
}

TEST(HuberPsiTest, OddFunction) {
  for (double x : {0.1, 0.9, 1.99, 2.5, 10.0}) {
    EXPECT_DOUBLE_EQ(HuberPsi(x), -HuberPsi(-x));
  }
}

TEST(BiweightRhoTest, ZeroAtZeroAndPlateauOutside) {
  EXPECT_DOUBLE_EQ(BiweightRho(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BiweightRho(2.0), kBiweightCk);
  EXPECT_DOUBLE_EQ(BiweightRho(50.0), kBiweightCk);
  EXPECT_DOUBLE_EQ(BiweightRho(-50.0), kBiweightCk);
}

TEST(BiweightRhoTest, MonotoneOnPositiveAxisUpToCap) {
  double prev = -1.0;
  for (double x = 0.0; x <= 2.0; x += 0.05) {
    const double v = BiweightRho(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(BiweightRhoTest, EvenFunction) {
  for (double x : {0.3, 1.0, 1.7, 2.2}) {
    EXPECT_DOUBLE_EQ(BiweightRho(x), BiweightRho(-x));
  }
}

TEST(CleanObservationTest, PassesInliersThrough) {
  // |y - forecast| < k * sigma: the observation is kept exactly.
  EXPECT_DOUBLE_EQ(CleanObservation(10.5, 10.0, 1.0), 10.5);
  EXPECT_DOUBLE_EQ(CleanObservation(8.2, 10.0, 1.0), 8.2);
}

TEST(CleanObservationTest, CapsOutliersAtKSigma) {
  EXPECT_DOUBLE_EQ(CleanObservation(100.0, 10.0, 1.0), 12.0);
  EXPECT_DOUBLE_EQ(CleanObservation(-100.0, 10.0, 1.0), 8.0);
}

TEST(CleanObservationTest, CleanedValueAlwaysWithinKSigma) {
  for (double y : {-50.0, -5.0, 0.0, 3.0, 9.0, 500.0}) {
    const double cleaned = CleanObservation(y, 1.0, 2.0);
    EXPECT_LE(std::fabs(cleaned - 1.0), 2.0 * 2.0 + 1e-12);
  }
}

TEST(UpdateErrorScaleTest, StationaryAtConsistentResidualScale) {
  // With phi = 0 the scale never moves.
  EXPECT_DOUBLE_EQ(UpdateErrorScale(5.0, 0.0, 2.0, 0.0), 2.0);
}

TEST(UpdateErrorScaleTest, GrowsOnLargeResidualShrinksOnSmall) {
  const double sigma = 1.0;
  // Large standardized residual: rho at plateau (2.52) > 1 -> scale grows.
  EXPECT_GT(UpdateErrorScale(10.0, 0.0, sigma, 0.1), sigma);
  // Zero residual: rho = 0 -> scale shrinks.
  EXPECT_LT(UpdateErrorScale(0.0, 0.0, sigma, 0.1), sigma);
}

TEST(UpdateErrorScaleTest, BoundedGrowthPerStep) {
  // Because rho is capped at ck, one update can inflate the variance by at
  // most a factor (1 + phi * (ck - 1)) — outliers cannot blow up the scale.
  const double phi = 0.01;
  const double sigma = 3.0;
  const double updated = UpdateErrorScale(1e9, 0.0, sigma, phi);
  const double bound = sigma * std::sqrt(1.0 + phi * (kBiweightCk - 1.0));
  EXPECT_LE(updated, bound + 1e-12);
}

}  // namespace
}  // namespace sofia
