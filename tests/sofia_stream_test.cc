#include "core/sofia_stream.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

SofiaConfig SmallConfig() {
  SofiaConfig config;
  config.rank = 3;
  config.period = 8;
  config.init_seasons = 3;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.max_init_iterations = 25;
  return config;
}

TEST(SofiaStreamTest, DeclaresThreeSeasonInitWindow) {
  SofiaStream method(SmallConfig());
  EXPECT_EQ(method.init_window(), 24u);
  EXPECT_EQ(method.name(), "SOFIA");
  EXPECT_TRUE(method.SupportsForecast());
}

TEST(SofiaStreamTest, RunsThroughTheImputationProtocol) {
  SyntheticTensor syn = MakeSinusoidTensor(8, 6, 48, 3, 8, 51);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < 48; ++t) truth.push_back(syn.tensor.SliceLastMode(t));
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, 52);

  SofiaStream method(SmallConfig());
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_EQ(res.nre.size(), truth.size());
  EXPECT_GT(res.init_seconds, 0.0);
  EXPECT_EQ(res.step_seconds.size(), truth.size() - method.init_window());
  // Under (30,10,3) corruption, the imputation stays far below trivial
  // error 1.0 throughout.
  EXPECT_LT(res.rae, 0.5);
}

TEST(SofiaStreamTest, InitializeReturnsOneCompletionPerSlice) {
  SyntheticTensor syn = MakeSinusoidTensor(8, 6, 24, 3, 8, 53);
  std::vector<DenseTensor> slices;
  std::vector<Mask> masks;
  for (size_t t = 0; t < 24; ++t) {
    slices.push_back(syn.tensor.SliceLastMode(t));
    masks.emplace_back(slices.back().shape(), true);
  }
  SofiaStream method(SmallConfig());
  std::vector<DenseTensor> completed = method.Initialize(slices, masks);
  ASSERT_EQ(completed.size(), 24u);
  for (const DenseTensor& c : completed) {
    EXPECT_EQ(c.shape(), slices[0].shape());
  }
}

TEST(SofiaStreamTest, StepBeforeInitializeDies) {
  SofiaStream method(SmallConfig());
  DenseTensor y(Shape({4, 4}), 1.0);
  Mask omega(y.shape(), true);
  EXPECT_DEATH(method.Step(y, omega), "Initialize");
}

/// Initialize a bare SofiaModel on fully-observed slices for the
/// degenerate-Ω_t cases below.
SofiaModel InitFullModel(const SofiaConfig& config, uint64_t seed) {
  const size_t w = config.InitWindow();
  SyntheticTensor syn = MakeSinusoidTensor(8, 6, w, config.rank,
                                           config.period, seed);
  std::vector<DenseTensor> slices;
  std::vector<Mask> masks;
  for (size_t t = 0; t < w; ++t) {
    slices.push_back(syn.tensor.SliceLastMode(t));
    masks.emplace_back(slices.back().shape(), true);
  }
  return SofiaModel::Initialize(slices, masks, config);
}

/// Degenerate Ω_t = ∅: no data reaches the update, yet the vector HW
/// recursion of Eq. (26) must still advance on the smoothness-only temporal
/// row, with no NaNs in level/trend and no touched error scales.
TEST(SofiaStreamTest, AllEntriesMissingStepAdvancesHwPerEq26) {
  SofiaConfig config = SmallConfig();
  // λ2 couples to the u_{t-m} ring, which has no public accessor; dropping
  // it keeps the expected temporal row computable from the public state.
  config.lambda2 = 0.0;
  SofiaModel model = InitFullModel(config, 61);

  const std::vector<double> l_prev = model.level();
  const std::vector<double> b_prev = model.trend();
  const std::vector<double> s_prev = model.next_season();  // s_{t-m}
  const std::vector<double> u_prev = model.last_temporal_row();
  const DenseTensor sigma_before = model.error_scale();

  DenseTensor y(model.error_scale().shape(), 3.0);
  Mask empty(y.shape(), false);
  SofiaStepResult out = model.Step(y, empty);
  EXPECT_EQ(out.num_observed(), 0u);
  EXPECT_EQ(out.outliers().CountNonZero(0.0), 0u);

  const std::vector<double>& u_t = model.last_temporal_row();
  for (size_t r = 0; r < config.rank; ++r) {
    // Eq. (25) with an empty gradient: the curvature trace is zero, so the
    // step is the raw 2µ and only the λ1 pull toward u_{t-1} acts.
    const double u_hat = l_prev[r] + b_prev[r] + s_prev[r];
    const double expected_u =
        u_hat + 2.0 * config.mu * config.lambda1 * (u_prev[r] - u_hat);
    EXPECT_NEAR(u_t[r], expected_u, 1e-12) << "column " << r;
    // Eq. (26a)/(26b) on that row.
    const double alpha = model.hw_params()[r].alpha;
    const double beta = model.hw_params()[r].beta;
    const double expected_l = alpha * (u_t[r] - s_prev[r]) +
                              (1.0 - alpha) * (l_prev[r] + b_prev[r]);
    EXPECT_NEAR(model.level()[r], expected_l, 1e-12) << "column " << r;
    EXPECT_NEAR(model.trend()[r],
                beta * (model.level()[r] - l_prev[r]) +
                    (1.0 - beta) * b_prev[r],
                1e-12) << "column " << r;
    EXPECT_TRUE(std::isfinite(model.level()[r]));
    EXPECT_TRUE(std::isfinite(model.trend()[r]));
  }
  // No observation touched any error scale.
  DenseTensor sdiff = model.error_scale() - sigma_before;
  EXPECT_DOUBLE_EQ(sdiff.FrobeniusNorm(), 0.0);
}

/// Degenerate step where every observed entry is an extreme outlier: the
/// Huber clip routes (almost) the whole slice into O_t, the clipped
/// residuals keep the gradient bounded, and Eq. (26) still advances with
/// finite level/trend.
TEST(SofiaStreamTest, AllEntriesOutlierStepStaysFiniteAndAdvances) {
  SofiaConfig config = SmallConfig();
  SofiaModel model = InitFullModel(config, 63);

  const std::vector<double> l_prev = model.level();
  const std::vector<double> b_prev = model.trend();
  const std::vector<double> s_prev = model.next_season();

  DenseTensor y(model.error_scale().shape(), 1e6);  // Every reading absurd.
  Mask full(y.shape(), true);
  SofiaStepResult out = model.Step(y, full);

  // Eq. (21) flags every observed entry with nearly the full spike mass.
  ASSERT_EQ(out.num_observed(), y.NumElements());
  for (size_t k = 0; k < out.num_observed(); ++k) {
    EXPECT_GT(std::fabs(out.observed_outliers()[k]),
              0.9 * std::fabs(y[out.observed_indices()[k]] -
                              out.observed_forecast()[k]));
  }
  const std::vector<double>& u_t = model.last_temporal_row();
  for (size_t r = 0; r < config.rank; ++r) {
    EXPECT_TRUE(std::isfinite(u_t[r]));
    EXPECT_TRUE(std::isfinite(model.level()[r]));
    EXPECT_TRUE(std::isfinite(model.trend()[r]));
    // Eq. (26a) still holds exactly on the (robustly damped) temporal row.
    const double alpha = model.hw_params()[r].alpha;
    const double expected_l = alpha * (u_t[r] - s_prev[r]) +
                              (1.0 - alpha) * (l_prev[r] + b_prev[r]);
    EXPECT_NEAR(model.level()[r], expected_l,
                1e-12 * (1.0 + std::fabs(expected_l)));
  }
  // The next clean-looking forecast is still finite.
  EXPECT_TRUE(std::isfinite(model.Forecast(1).FrobeniusNorm()));
}

TEST(SofiaStreamTest, CustomDisplayNameFlowsThrough) {
  SofiaStream method(SmallConfig(), SofiaAblation{},
                     "SOFIA(no-smoothing)");
  EXPECT_EQ(method.name(), "SOFIA(no-smoothing)");
}

}  // namespace
}  // namespace sofia
