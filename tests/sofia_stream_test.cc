#include "core/sofia_stream.hpp"

#include <gtest/gtest.h>

#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

SofiaConfig SmallConfig() {
  SofiaConfig config;
  config.rank = 3;
  config.period = 8;
  config.init_seasons = 3;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.max_init_iterations = 25;
  return config;
}

TEST(SofiaStreamTest, DeclaresThreeSeasonInitWindow) {
  SofiaStream method(SmallConfig());
  EXPECT_EQ(method.init_window(), 24u);
  EXPECT_EQ(method.name(), "SOFIA");
  EXPECT_TRUE(method.SupportsForecast());
}

TEST(SofiaStreamTest, RunsThroughTheImputationProtocol) {
  SyntheticTensor syn = MakeSinusoidTensor(8, 6, 48, 3, 8, 51);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < 48; ++t) truth.push_back(syn.tensor.SliceLastMode(t));
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, 52);

  SofiaStream method(SmallConfig());
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_EQ(res.nre.size(), truth.size());
  EXPECT_GT(res.init_seconds, 0.0);
  EXPECT_EQ(res.step_seconds.size(), truth.size() - method.init_window());
  // Under (30,10,3) corruption, the imputation stays far below trivial
  // error 1.0 throughout.
  EXPECT_LT(res.rae, 0.5);
}

TEST(SofiaStreamTest, InitializeReturnsOneCompletionPerSlice) {
  SyntheticTensor syn = MakeSinusoidTensor(8, 6, 24, 3, 8, 53);
  std::vector<DenseTensor> slices;
  std::vector<Mask> masks;
  for (size_t t = 0; t < 24; ++t) {
    slices.push_back(syn.tensor.SliceLastMode(t));
    masks.emplace_back(slices.back().shape(), true);
  }
  SofiaStream method(SmallConfig());
  std::vector<DenseTensor> completed = method.Initialize(slices, masks);
  ASSERT_EQ(completed.size(), 24u);
  for (const DenseTensor& c : completed) {
    EXPECT_EQ(c.shape(), slices[0].shape());
  }
}

TEST(SofiaStreamTest, StepBeforeInitializeDies) {
  SofiaStream method(SmallConfig());
  DenseTensor y(Shape({4, 4}), 1.0);
  Mask omega(y.shape(), true);
  EXPECT_DEATH(method.Step(y, omega), "Initialize");
}

TEST(SofiaStreamTest, CustomDisplayNameFlowsThrough) {
  SofiaStream method(SmallConfig(), SofiaAblation{},
                     "SOFIA(no-smoothing)");
  EXPECT_EQ(method.name(), "SOFIA(no-smoothing)");
}

}  // namespace
}  // namespace sofia
