#include "tensor/unfold.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/khatri_rao.hpp"
#include "tensor/kruskal.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(UnfoldTest, Mode0OfMatrixIsIdentityReshape) {
  // A 2-way tensor unfolded along mode 0 is the matrix itself.
  DenseTensor t(Shape({2, 3}));
  for (size_t k = 0; k < 6; ++k) t[k] = static_cast<double>(k);
  Matrix m = Unfold(t, 0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), t.At({i, j}));
    }
  }
}

TEST(UnfoldTest, KoldaColumnOrderOnThreeWay) {
  // For mode-1 unfolding of a I x J x K tensor, column index is i + k * I
  // (lower modes first, each varying fastest).
  DenseTensor t(Shape({2, 3, 2}));
  for (size_t k = 0; k < t.NumElements(); ++k) t[k] = static_cast<double>(k);
  Matrix m = Unfold(t, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      for (size_t k = 0; k < 2; ++k) {
        EXPECT_DOUBLE_EQ(m(j, i + k * 2), t.At({i, j, k}));
      }
    }
  }
}

// Property: Fold inverts Unfold for every mode of several shapes.
class UnfoldRoundtripTest
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(UnfoldRoundtripTest, FoldInvertsUnfold) {
  Rng rng(42);
  DenseTensor t = DenseTensor::RandomNormal(Shape(GetParam()), rng);
  for (size_t mode = 0; mode < t.order(); ++mode) {
    Matrix m = Unfold(t, mode);
    DenseTensor back = Fold(m, t.shape(), mode);
    DenseTensor diff = back - t;
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0) << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnfoldRoundtripTest,
    ::testing::Values(std::vector<size_t>{4, 5}, std::vector<size_t>{3, 4, 5},
                      std::vector<size_t>{2, 2, 3, 2},
                      std::vector<size_t>{1, 5, 2},
                      std::vector<size_t>{6, 1, 1, 3}));

// Property: the CP identity X_(n) = U^(n) * KhatriRaoSkip(U, n)^T holds for
// every mode. This pins the unfolding and Khatri-Rao conventions together.
class CpIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, std::vector<size_t>>> {};

TEST_P(CpIdentityTest, UnfoldingOfKruskalMatchesKhatriRao) {
  const auto& [seed, dims] = GetParam();
  Rng rng(seed);
  const size_t rank = 3;
  std::vector<Matrix> factors;
  for (size_t d : dims) {
    factors.push_back(Matrix::RandomNormal(d, rank, rng));
  }
  DenseTensor x = KruskalTensor(factors);
  for (size_t mode = 0; mode < dims.size(); ++mode) {
    Matrix lhs = Unfold(x, mode);
    Matrix rhs =
        MatMul(factors[mode], KhatriRaoSkip(factors, mode).Transpose());
    EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-10) << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, CpIdentityTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(std::vector<size_t>{4, 5},
                                         std::vector<size_t>{3, 4, 5},
                                         std::vector<size_t>{2, 3, 2, 4})));

}  // namespace
}  // namespace sofia
