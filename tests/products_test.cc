#include "tensor/products.hpp"

#include <gtest/gtest.h>

#include "tensor/khatri_rao.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/unfold.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(TtmTest, MatchesUnfoldBasedDefinition) {
  // X x_n M  <=>  fold(M * X_(n)) along mode n.
  Rng rng(111);
  DenseTensor x = DenseTensor::RandomNormal(Shape({3, 4, 5}), rng);
  for (size_t mode = 0; mode < 3; ++mode) {
    Matrix m = Matrix::RandomNormal(6, x.dim(mode), rng);
    DenseTensor got = Ttm(x, m, mode);
    std::vector<size_t> dims = x.shape().dims();
    dims[mode] = 6;
    DenseTensor expected = Fold(MatMul(m, Unfold(x, mode)), Shape(dims), mode);
    DenseTensor diff = got - expected;
    EXPECT_LT(diff.FrobeniusNorm(), 1e-10) << "mode " << mode;
  }
}

TEST(TtmTest, IdentityMatrixIsNoOp) {
  Rng rng(113);
  DenseTensor x = DenseTensor::RandomNormal(Shape({4, 3, 2}), rng);
  for (size_t mode = 0; mode < 3; ++mode) {
    DenseTensor got = Ttm(x, Matrix::Identity(x.dim(mode)), mode);
    DenseTensor diff = got - x;
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
  }
}

TEST(TtmTest, ContractionToSingleRowSumsMode) {
  // A 1 x I row of ones contracts the mode into a sum.
  DenseTensor x(Shape({2, 3}), 1.0);
  Matrix ones(1, 2, 1.0);
  DenseTensor got = Ttm(x, ones, 0);
  EXPECT_EQ(got.shape().dims(), (std::vector<size_t>{1, 3}));
  for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(got.At({0, j}), 2.0);
}

TEST(MttkrpTest, MatchesUnfoldTimesKhatriRao) {
  Rng rng(115);
  DenseTensor x = DenseTensor::RandomNormal(Shape({3, 4, 5}), rng);
  std::vector<Matrix> factors = {Matrix::RandomNormal(3, 2, rng),
                                 Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(5, 2, rng)};
  for (size_t mode = 0; mode < 3; ++mode) {
    Matrix got = Mttkrp(x, factors, mode);
    Matrix expected = MatMul(Unfold(x, mode), KhatriRaoSkip(factors, mode));
    EXPECT_LT(got.MaxAbsDiff(expected), 1e-10) << "mode " << mode;
  }
}

TEST(MttkrpTest, AlsNormalEquationIdentityAtTruth) {
  // At the generating factors with full observation, MTTKRP equals
  // U^(n) * (Gram Hadamard identity):  X_(n) (kr) = U^(n) (⊛ grams).
  Rng rng(117);
  std::vector<Matrix> factors = {Matrix::RandomNormal(4, 3, rng),
                                 Matrix::RandomNormal(5, 3, rng),
                                 Matrix::RandomNormal(6, 3, rng)};
  DenseTensor x = KruskalTensor(factors);
  for (size_t mode = 0; mode < 3; ++mode) {
    Matrix lhs = Mttkrp(x, factors, mode);
    Matrix gram = Matrix(3, 3, 0.0);
    bool first = true;
    for (size_t l = 0; l < 3; ++l) {
      if (l == mode) continue;
      Matrix g = Gram(factors[l]);
      gram = first ? g : gram.Hadamard(g);
      first = false;
    }
    Matrix rhs = MatMul(factors[mode], gram);
    EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-9) << "mode " << mode;
  }
}

TEST(MaskedMttkrpTest, FullMaskMatchesUnmasked) {
  Rng rng(119);
  DenseTensor x = DenseTensor::RandomNormal(Shape({3, 4, 2}), rng);
  std::vector<Matrix> factors = {Matrix::RandomNormal(3, 2, rng),
                                 Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(2, 2, rng)};
  Mask all(x.shape(), true);
  for (size_t mode = 0; mode < 3; ++mode) {
    Matrix a = MaskedMttkrp(x, all, factors, mode);
    Matrix b = Mttkrp(x, factors, mode);
    EXPECT_LT(a.MaxAbsDiff(b), 1e-12);
  }
}

TEST(MaskedMttkrpTest, MaskedEntriesDoNotContribute) {
  Rng rng(121);
  DenseTensor x = DenseTensor::RandomNormal(Shape({3, 3}), rng);
  std::vector<Matrix> factors = {Matrix::RandomNormal(3, 2, rng),
                                 Matrix::RandomNormal(3, 2, rng)};
  Mask omega(x.shape(), true);
  omega.Set(4, false);
  // Zeroing the masked entry in the data must give the same result.
  DenseTensor x_zeroed = x;
  x_zeroed[4] = 0.0;
  Matrix a = MaskedMttkrp(x, omega, factors, 0);
  Matrix b = Mttkrp(x_zeroed, factors, 0);
  EXPECT_LT(a.MaxAbsDiff(b), 1e-12);
}

}  // namespace
}  // namespace sofia
