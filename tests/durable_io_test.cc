// Crash-atomic file primitives (util/durable_io): framed roundtrips, CRC
// rejection of bit rot and torn tails, old-file preservation across every
// injected crash point of the write protocol, retry/backoff riding out
// transient IO-error windows, and SnapshotStore generation rotation with
// fail-soft fallback to older uncorrupted generations.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/durable_io.hpp"
#include "util/fault_injection.hpp"

namespace sofia {
namespace durable {
namespace {

/// Fresh scratch directory per test.
std::string MakeTempDir() {
  char tmpl[] = "/tmp/sofia_durable_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

RetryPolicy FastRetry() {
  RetryPolicy retry;
  retry.sleep = false;  // Exercise the schedule without wall-clock waits.
  return retry;
}

TEST(Crc32Test, MatchesKnownVectorAndChainsIncrementally) {
  // The IEEE 802.3 check value for "123456789".
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  // Incremental chaining: crc(a+b) == crc(b, seed=crc(a)).
  const uint32_t head = Crc32(data, 4);
  EXPECT_EQ(Crc32(data + 4, 5, head), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(DurableIoTest, FramedRoundTripPreservesPayloadAndVersion) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/file.bin";
  const std::string payload = "binary\0payload with nulls";
  ASSERT_EQ(WriteFileAtomic(path, payload, /*version=*/7, FastRetry()),
            IoStatus::kOk);
  std::string got;
  uint32_t version = 0;
  ASSERT_EQ(ReadFramedFile(path, &got, &version), IoStatus::kOk);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(version, 7u);
  EXPECT_EQ(ReadFramedFile(dir + "/missing", &got), IoStatus::kNotFound);
}

TEST(DurableIoTest, EveryFlippedBitIsDetected) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/file.bin";
  const std::string payload = "0123456789abcdef";
  ASSERT_EQ(WriteFileAtomic(path, payload, 1, FastRetry()), IoStatus::kOk);
  const size_t size = fault::FileSize(path);
  ASSERT_NE(size, SIZE_MAX);
  for (size_t offset = 0; offset < size; ++offset) {
    ASSERT_TRUE(fault::FlipFileBit(path, offset, offset % 8));
    std::string got;
    EXPECT_EQ(ReadFramedFile(path, &got), IoStatus::kCorrupt)
        << "flip at byte " << offset << " went undetected";
    ASSERT_TRUE(fault::FlipFileBit(path, offset, offset % 8));  // Undo.
  }
  std::string got;
  EXPECT_EQ(ReadFramedFile(path, &got), IoStatus::kOk);  // Restored.
}

TEST(DurableIoTest, TruncatedTailIsCorruptNotCrash) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/file.bin";
  ASSERT_EQ(WriteFileAtomic(path, "a sizeable enough payload", 1,
                            FastRetry()),
            IoStatus::kOk);
  const size_t size = fault::FileSize(path);
  for (const size_t keep : {size - 1, size / 2, size_t{25}, size_t{0}}) {
    ASSERT_TRUE(fault::TruncateFile(path, keep));
    std::string got;
    EXPECT_EQ(ReadFramedFile(path, &got), IoStatus::kCorrupt)
        << "tail truncated to " << keep << " bytes";
  }
}

TEST(DurableIoTest, CrashAtEveryWriteSiteLeavesOldFileIntact) {
  // The atomicity contract: after a crash at ANY point of the write
  // protocol, a reader sees the complete old file (or the complete new
  // one after rename) — never a mix, never corruption.
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/state.bin";
  ASSERT_EQ(WriteFileAtomic(path, "OLD GENERATION", 1, FastRetry()),
            IoStatus::kOk);

  const fault::FaultSpec crash_specs[] = {
      {"atomic.open", fault::FaultKind::kCrash, 0, 1, 0.5},
      {"atomic.write", fault::FaultKind::kCrash, 0, 1, 0.5},
      {"atomic.write", fault::FaultKind::kTornWrite, 0, 1, 0.4},
      {"atomic.fsync", fault::FaultKind::kCrash, 0, 1, 0.5},
      {"atomic.rename", fault::FaultKind::kCrash, 0, 1, 0.5},
  };
  for (const fault::FaultSpec& spec : crash_specs) {
    fault::ScopedFaultPlan plan(spec);
    bool crashed = false;
    try {
      WriteFileAtomic(path, "NEW GENERATION (never lands)", 2, FastRetry());
    } catch (const fault::SimulatedCrash& crash) {
      crashed = true;
      EXPECT_EQ(crash.site, spec.site);
    }
    fault::Reset();
    EXPECT_TRUE(crashed) << spec.site;
    std::string got;
    uint32_t version = 0;
    ASSERT_EQ(ReadFramedFile(path, &got, &version), IoStatus::kOk)
        << "crash at " << spec.site << " corrupted the old file";
    EXPECT_EQ(got, "OLD GENERATION");
    EXPECT_EQ(version, 1u);
  }
}

TEST(DurableIoTest, RetryRidesOutTransientErrorWindow) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/retry.bin";
  // Two failing write ops, then success: within the 5-attempt budget.
  fault::ScopedFaultPlan plan(
      {"atomic.write", fault::FaultKind::kIoError, 0, /*count=*/2, 0.5});
  IoTelemetry telemetry;
  ASSERT_EQ(WriteFileAtomic(path, "persistent payload", 1, FastRetry(),
                            &telemetry),
            IoStatus::kOk);
  EXPECT_EQ(telemetry.write_retries, 2u);
  EXPECT_EQ(telemetry.write_failures, 0u);
  fault::Reset();
  std::string got;
  EXPECT_EQ(ReadFramedFile(path, &got), IoStatus::kOk);
  EXPECT_EQ(got, "persistent payload");
}

TEST(DurableIoTest, ExhaustedRetryBudgetReportsIoError) {
  const std::string dir = MakeTempDir();
  fault::ScopedFaultPlan plan(
      {"atomic.write", fault::FaultKind::kIoError, 0, /*count=*/100, 0.5});
  IoTelemetry telemetry;
  EXPECT_EQ(WriteFileAtomic(dir + "/never.bin", "payload", 1, FastRetry(),
                            &telemetry),
            IoStatus::kIoError);
  EXPECT_EQ(telemetry.write_failures, 1u);
  EXPECT_EQ(telemetry.write_retries, 4u);  // 5 attempts, 4 retries.
}

TEST(SnapshotStoreTest, RotatesGenerationsAndPrunesOldest) {
  const std::string dir = MakeTempDir();
  SnapshotOptions options;
  options.generations = 3;
  options.retry = FastRetry();
  SnapshotStore store(dir + "/snaps", "model", options);
  for (uint64_t seq = 0; seq < 6; ++seq) {
    ASSERT_EQ(store.Write(seq, "state " + std::to_string(seq)),
              IoStatus::kOk);
  }
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{3, 4, 5}));
  std::string payload;
  uint64_t seq = 0;
  ASSERT_EQ(store.LoadNewest(&payload, &seq), IoStatus::kOk);
  EXPECT_EQ(seq, 5u);
  EXPECT_EQ(payload, "state 5");
}

TEST(SnapshotStoreTest, LoadFallsBackPastCorruptGenerations) {
  const std::string dir = MakeTempDir();
  SnapshotOptions options;
  options.generations = 3;
  options.retry = FastRetry();
  SnapshotStore store(dir + "/snaps", "model", options);
  for (uint64_t seq = 0; seq < 3; ++seq) {
    ASSERT_EQ(store.Write(seq, "state " + std::to_string(seq)),
              IoStatus::kOk);
  }
  // Newest: bit rot. Middle: torn tail. Oldest: intact.
  ASSERT_TRUE(fault::FlipFileBit(store.GenerationPath(2), 30, 3));
  ASSERT_TRUE(fault::TruncateFile(store.GenerationPath(1),
                                  fault::FileSize(store.GenerationPath(1)) /
                                      2));
  std::string payload;
  uint64_t seq = 99;
  ASSERT_EQ(store.LoadNewest(&payload, &seq), IoStatus::kOk);
  EXPECT_EQ(seq, 0u);
  EXPECT_EQ(payload, "state 0");
  EXPECT_EQ(store.telemetry().corrupt_reads, 2u);

  // All generations corrupt: kNotFound, still no crash.
  ASSERT_TRUE(fault::TruncateFile(store.GenerationPath(0), 4));
  EXPECT_EQ(store.LoadNewest(&payload, &seq), IoStatus::kNotFound);
}

TEST(SnapshotStoreTest, FailedWriteLeavesPreviousGenerations) {
  const std::string dir = MakeTempDir();
  SnapshotOptions options;
  options.retry = FastRetry();
  SnapshotStore store(dir + "/snaps", "model", options);
  ASSERT_EQ(store.Write(0, "good state"), IoStatus::kOk);
  fault::ScopedFaultPlan plan(
      {"atomic.write", fault::FaultKind::kIoError, 0, /*count=*/100, 0.5});
  EXPECT_EQ(store.Write(1, "doomed state"), IoStatus::kIoError);
  fault::Reset();
  std::string payload;
  uint64_t seq = 0;
  ASSERT_EQ(store.LoadNewest(&payload, &seq), IoStatus::kOk);
  EXPECT_EQ(seq, 0u);
  EXPECT_EQ(payload, "good state");
}

TEST(DurableIoTest, EnsureDirCreatesNestedPaths) {
  const std::string dir = MakeTempDir();
  EXPECT_TRUE(EnsureDir(dir + "/a/b/c"));
  EXPECT_TRUE(EnsureDir(dir + "/a/b/c"));  // Idempotent.
  EXPECT_EQ(WriteFileAtomic(dir + "/a/b/c/f.bin", "x", 1, FastRetry()),
            IoStatus::kOk);
}

}  // namespace
}  // namespace durable
}  // namespace sofia
