#include "data/corruption.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  return MakeScalabilityStream(12, 10, steps, 3, 6, seed);
}

TEST(CorruptionTest, NoCorruptionIsIdentity) {
  std::vector<DenseTensor> truth = MakeTruth(10, 1);
  CorruptedStream s = Corrupt(truth, {0.0, 0.0, 0.0}, 2);
  for (size_t t = 0; t < truth.size(); ++t) {
    DenseTensor diff = s.slices[t] - truth[t];
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
    EXPECT_EQ(s.masks[t].CountObserved(), truth[t].NumElements());
    EXPECT_EQ(s.outlier_positions[t].CountObserved(), 0u);
  }
}

TEST(CorruptionTest, MissingFractionApproximatelyX) {
  std::vector<DenseTensor> truth = MakeTruth(40, 3);
  CorruptedStream s = Corrupt(truth, {30.0, 0.0, 0.0}, 4);
  size_t observed = 0, total = 0;
  for (const Mask& m : s.masks) {
    observed += m.CountObserved();
    total += truth[0].NumElements();
  }
  const double frac = 1.0 - static_cast<double>(observed) /
                                static_cast<double>(total);
  EXPECT_NEAR(frac, 0.30, 0.02);
}

TEST(CorruptionTest, OutlierFractionApproximatelyY) {
  std::vector<DenseTensor> truth = MakeTruth(40, 5);
  CorruptedStream s = Corrupt(truth, {0.0, 15.0, 3.0}, 6);
  size_t outliers = 0, total = 0;
  for (const Mask& m : s.outlier_positions) {
    outliers += m.CountObserved();
    total += truth[0].NumElements();
  }
  const double frac =
      static_cast<double>(outliers) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.15, 0.02);
}

TEST(CorruptionTest, OutlierMagnitudeIsZTimesMax) {
  std::vector<DenseTensor> truth = MakeTruth(20, 7);
  CorruptedStream s = Corrupt(truth, {0.0, 10.0, 4.0}, 8);
  const double magnitude = 4.0 * s.max_abs;
  bool saw_positive = false, saw_negative = false;
  for (size_t t = 0; t < truth.size(); ++t) {
    for (size_t k = 0; k < truth[t].NumElements(); ++k) {
      if (s.outlier_positions[t].Get(k)) {
        const double delta = s.slices[t][k] - truth[t][k];
        EXPECT_NEAR(std::fabs(delta), magnitude, 1e-9);
        if (delta > 0) saw_positive = true;
        if (delta < 0) saw_negative = true;
      } else {
        EXPECT_DOUBLE_EQ(s.slices[t][k], truth[t][k]);
      }
    }
  }
  EXPECT_TRUE(saw_positive);
  EXPECT_TRUE(saw_negative);
}

TEST(CorruptionTest, MaxAbsIsGlobalStreamMaximum) {
  std::vector<DenseTensor> truth = MakeTruth(10, 9);
  double expected = 0.0;
  for (const DenseTensor& slice : truth) {
    expected = std::max(expected, slice.MaxAbs());
  }
  CorruptedStream s = Corrupt(truth, {10.0, 10.0, 2.0}, 10);
  EXPECT_DOUBLE_EQ(s.max_abs, expected);
}

TEST(CorruptionTest, DeterministicForFixedSeed) {
  std::vector<DenseTensor> truth = MakeTruth(10, 11);
  CorruptedStream a = Corrupt(truth, {40.0, 10.0, 3.0}, 99);
  CorruptedStream b = Corrupt(truth, {40.0, 10.0, 3.0}, 99);
  for (size_t t = 0; t < truth.size(); ++t) {
    DenseTensor diff = a.slices[t] - b.slices[t];
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
    EXPECT_EQ(a.masks[t].CountObserved(), b.masks[t].CountObserved());
  }
}

TEST(CorruptionTest, PaperGridHasFourSettingsMildToHarsh) {
  std::vector<CorruptionSetting> grid = PaperSettingGrid();
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid.front().ToString(), "(20,10,2)");
  EXPECT_EQ(grid.back().ToString(), "(70,20,5)");
  for (size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GE(grid[i].missing_percent, grid[i - 1].missing_percent);
    EXPECT_GE(grid[i].magnitude, grid[i - 1].magnitude);
  }
}

}  // namespace
}  // namespace sofia
