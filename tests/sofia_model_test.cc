#include "core/sofia_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "tensor/kruskal.hpp"

namespace sofia {
namespace {

/// A seasonal low-rank stream long enough for init + streaming + forecast.
struct StreamProblem {
  std::vector<DenseTensor> truth;
  SofiaConfig config;
};

/// `lambda` is the smoothness weight: the paper default 1e-3 for clean
/// streams (no prior needed; avoids regularization bias), 0.5 for corrupted
/// streams where the prior is what rescues the factorization.
StreamProblem MakeStream(size_t duration, uint64_t seed,
                         double lambda = 1e-3) {
  StreamProblem p;
  p.config.period = 8;
  p.config.rank = 3;
  p.config.init_seasons = 3;
  p.config.seed = seed;
  p.config.max_init_iterations = 10;
  p.config.lambda1 = lambda;
  p.config.lambda2 = lambda;
  SyntheticTensor syn =
      MakeSinusoidTensor(9, 7, duration, p.config.rank, p.config.period, seed);
  for (size_t t = 0; t < duration; ++t) {
    p.truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return p;
}

SofiaModel InitModel(const StreamProblem& p, const CorruptedStream& stream) {
  const size_t w = p.config.InitWindow();
  std::vector<DenseTensor> slices(stream.slices.begin(),
                                  stream.slices.begin() + w);
  std::vector<Mask> masks(stream.masks.begin(), stream.masks.begin() + w);
  return SofiaModel::Initialize(slices, masks, p.config);
}

TEST(SofiaModelTest, TracksCleanStreamAccurately) {
  StreamProblem p = MakeStream(64, 31);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 32);
  SofiaModel model = InitModel(p, stream);
  std::vector<double> nre;
  for (size_t t = p.config.InitWindow(); t < p.truth.size(); ++t) {
    SofiaStepResult out = model.Step(stream.slices[t], stream.masks[t]);
    nre.push_back(NormalizedResidualError(out.imputed(), p.truth[t]));
  }
  EXPECT_LT(Mean(nre), 0.05);
}

TEST(SofiaModelTest, ImputesMissingEntries) {
  StreamProblem p = MakeStream(64, 33, /*lambda=*/0.5);
  CorruptedStream stream = Corrupt(p.truth, {40.0, 0.0, 0.0}, 34);
  SofiaModel model = InitModel(p, stream);
  std::vector<double> nre;
  for (size_t t = p.config.InitWindow(); t < p.truth.size(); ++t) {
    SofiaStepResult out = model.Step(stream.slices[t], stream.masks[t]);
    nre.push_back(NormalizedResidualError(out.imputed(), p.truth[t]));
  }
  // 40% of entries were never observed, yet the slice error stays small.
  EXPECT_LT(Mean(nre), 0.12);
}

TEST(SofiaModelTest, DetectsInjectedSpikeAndShieldsImputation) {
  StreamProblem p = MakeStream(56, 35);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 36);
  SofiaModel model = InitModel(p, stream);
  const size_t w = p.config.InitWindow();

  // Warm up a few clean steps, then hit one entry with a massive spike.
  size_t t = w;
  for (; t < w + 6; ++t) model.Step(stream.slices[t], stream.masks[t]);
  DenseTensor spiked = stream.slices[t];
  const double magnitude = 20.0 * stream.max_abs;
  spiked[3] += magnitude;
  SofiaStepResult out = model.Step(spiked, stream.masks[t]);

  // Eq. (21): nearly the whole spike lands in the outlier tensor...
  EXPECT_GT(out.outliers()[3], 0.8 * magnitude);
  // ...and the imputed value stays near the truth, not the spike.
  EXPECT_LT(std::fabs(out.imputed()[3] - p.truth[t][3]),
            0.05 * magnitude);
}

TEST(SofiaModelTest, OutlierFreeInliersPassUntouched) {
  StreamProblem p = MakeStream(56, 37);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 38);
  SofiaModel model = InitModel(p, stream);
  const size_t w = p.config.InitWindow();
  SofiaStepResult out = model.Step(stream.slices[w], stream.masks[w]);
  // On a clean in-distribution slice, O_t should be (almost) all zero.
  EXPECT_LT(out.outliers().CountNonZero(1e-9),
            out.outliers().NumElements() / 10);
}

TEST(SofiaModelTest, TrendUpdateMatchesEquation26b) {
  StreamProblem p = MakeStream(56, 39);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 40);
  SofiaModel model = InitModel(p, stream);
  const size_t w = p.config.InitWindow();

  const std::vector<double> l_prev = model.level();
  const std::vector<double> b_prev = model.trend();
  model.Step(stream.slices[w], stream.masks[w]);
  for (size_t r = 0; r < p.config.rank; ++r) {
    const double beta = model.hw_params()[r].beta;
    const double expected =
        beta * (model.level()[r] - l_prev[r]) + (1.0 - beta) * b_prev[r];
    EXPECT_NEAR(model.trend()[r], expected, 1e-12) << "column " << r;
  }
}

TEST(SofiaModelTest, LevelUpdateMatchesEquation26a) {
  StreamProblem p = MakeStream(56, 41);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 42);
  SofiaModel model = InitModel(p, stream);
  const size_t w = p.config.InitWindow();

  const std::vector<double> l_prev = model.level();
  const std::vector<double> b_prev = model.trend();
  const std::vector<double> s_prev = model.next_season();  // s_{t-m}
  model.Step(stream.slices[w], stream.masks[w]);
  const std::vector<double>& u_t = model.last_temporal_row();
  for (size_t r = 0; r < p.config.rank; ++r) {
    const double alpha = model.hw_params()[r].alpha;
    const double expected = alpha * (u_t[r] - s_prev[r]) +
                            (1.0 - alpha) * (l_prev[r] + b_prev[r]);
    EXPECT_NEAR(model.level()[r], expected, 1e-12) << "column " << r;
  }
}

TEST(SofiaModelTest, ForecastMatchesHwExtrapolationOfFactors) {
  StreamProblem p = MakeStream(56, 43);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 44);
  SofiaModel model = InitModel(p, stream);
  for (size_t t = p.config.InitWindow(); t < 48; ++t) {
    model.Step(stream.slices[t], stream.masks[t]);
  }
  // h = 1 forecast must equal the reconstruction of l + b + s_next.
  std::vector<double> u_hat(p.config.rank);
  for (size_t r = 0; r < p.config.rank; ++r) {
    u_hat[r] = model.level()[r] + model.trend()[r] + model.next_season()[r];
  }
  DenseTensor expected = model.Reconstruct(u_hat);
  DenseTensor got = model.Forecast(1);
  DenseTensor diff = got - expected;
  EXPECT_LT(diff.FrobeniusNorm(), 1e-12);
}

TEST(SofiaModelTest, ForecastsFutureSlicesOfSeasonalStream) {
  StreamProblem p = MakeStream(72, 45);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 46);
  SofiaModel model = InitModel(p, stream);
  const size_t train = 56;
  for (size_t t = p.config.InitWindow(); t < train; ++t) {
    model.Step(stream.slices[t], stream.masks[t]);
  }
  std::vector<double> afe;
  for (size_t h = 1; h <= p.truth.size() - train; ++h) {
    afe.push_back(NormalizedResidualError(model.Forecast(h),
                                          p.truth[train + h - 1]));
  }
  EXPECT_LT(Mean(afe), 0.2);
}

TEST(SofiaModelTest, ErrorScaleStaysPositiveAndAdapts) {
  StreamProblem p = MakeStream(56, 47);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 0.0, 0.0}, 48);
  SofiaModel model = InitModel(p, stream);
  const size_t w = p.config.InitWindow();
  const double initial = model.error_scale()[0];
  EXPECT_DOUBLE_EQ(initial, p.config.lambda3 / 100.0);
  for (size_t t = w; t < 52; ++t) {
    model.Step(stream.slices[t], stream.masks[t]);
    for (size_t k = 0; k < model.error_scale().NumElements(); ++k) {
      EXPECT_GT(model.error_scale()[k], 0.0);
    }
  }
}

TEST(SofiaModelTest, AblationWithoutRejectionLeaksOutliers) {
  StreamProblem p = MakeStream(64, 49, /*lambda=*/0.5);
  CorruptedStream stream = Corrupt(p.truth, {0.0, 15.0, 5.0}, 50);
  // Corrupt only the post-init part so both models start identically.
  for (size_t t = 0; t < p.config.InitWindow(); ++t) {
    stream.slices[t] = p.truth[t];
  }

  auto run = [&](bool reject) {
    SofiaAblation ablation;
    ablation.reject_outliers = reject;
    const size_t w = p.config.InitWindow();
    std::vector<DenseTensor> slices(stream.slices.begin(),
                                    stream.slices.begin() + w);
    std::vector<Mask> masks(stream.masks.begin(), stream.masks.begin() + w);
    SofiaModel model =
        SofiaModel::Initialize(slices, masks, p.config, ablation);
    std::vector<double> nre;
    for (size_t t = w; t < p.truth.size(); ++t) {
      SofiaStepResult out = model.Step(stream.slices[t], stream.masks[t]);
      nre.push_back(NormalizedResidualError(out.imputed(), p.truth[t]));
    }
    return Mean(nre);
  };

  EXPECT_LT(run(/*reject=*/true), run(/*reject=*/false));
}

}  // namespace
}  // namespace sofia
