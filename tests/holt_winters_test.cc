#include "timeseries/holt_winters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sofia {
namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<double> SeasonalSeries(size_t n, size_t m, double level,
                                   double trend, double amp) {
  std::vector<double> y(n);
  for (size_t t = 0; t < n; ++t) {
    y[t] = level + trend * static_cast<double>(t) +
           amp * std::sin(kTwoPi * static_cast<double>(t % m) /
                          static_cast<double>(m));
  }
  return y;
}

TEST(HoltWintersTest, ConstantSeriesForecastsConstant) {
  std::vector<double> y(20, 7.0);
  HoltWinters hw(4, HwParams{0.5, 0.3, 0.3});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);
  for (size_t h = 1; h <= 8; ++h) {
    EXPECT_NEAR(hw.Forecast(h), 7.0, 1e-9) << "h=" << h;
  }
}

TEST(HoltWintersTest, LinearTrendForecastsLine) {
  std::vector<double> y(40);
  for (size_t t = 0; t < y.size(); ++t) y[t] = 2.0 + 0.5 * t;
  // The conventional initialization leaves a sawtooth artifact in the
  // seasonal slots on a pure trend; a responsive gamma unlearns it.
  HoltWinters hw(4, HwParams{0.5, 0.5, 0.6});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);
  // y_{39+h} = 2 + 0.5 * (39 + h).
  for (size_t h = 1; h <= 4; ++h) {
    EXPECT_NEAR(hw.Forecast(h), 2.0 + 0.5 * (39.0 + h), 0.05) << "h=" << h;
  }
}

TEST(HoltWintersTest, PureSeasonalPatternIsLearned) {
  const size_t m = 6;
  std::vector<double> y = SeasonalSeries(10 * m, m, 10.0, 0.0, 3.0);
  HoltWinters hw(m, HwParams{0.2, 0.05, 0.3});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);
  for (size_t h = 1; h <= m; ++h) {
    const size_t t = y.size() + h - 1;
    const double expected =
        10.0 + 3.0 * std::sin(kTwoPi * static_cast<double>(t % m) /
                              static_cast<double>(m));
    EXPECT_NEAR(hw.Forecast(h), expected, 0.15) << "h=" << h;
  }
}

TEST(HoltWintersTest, InitializationMatchesConvention) {
  // Two seasons of 1..8 with period 4: level = mean(1..4) = 2.5,
  // trend = (mean(5..8) - mean(1..4)) / 4 = 1, s_i = y_i - 2.5.
  std::vector<double> y = {1, 2, 3, 4, 5, 6, 7, 8};
  HoltWinters hw(4, HwParams{0.3, 0.1, 0.1});
  hw.InitializeFromHistory(y);
  EXPECT_DOUBLE_EQ(hw.level(), 2.5);
  EXPECT_DOUBLE_EQ(hw.trend(), 1.0);
  EXPECT_DOUBLE_EQ(hw.seasonal()[0], -1.5);
  EXPECT_DOUBLE_EQ(hw.seasonal()[3], 1.5);
}

TEST(HoltWintersTest, UpdateMatchesSmoothingEquationsByHand) {
  HoltWinters hw(2, HwParams{0.5, 0.4, 0.3});
  hw.SetState(10.0, 1.0, {-2.0, 2.0});
  hw.Update(9.5);
  // l = 0.5*(9.5 - (-2)) + 0.5*(10 + 1) = 5.75 + 5.5 = 11.25.
  EXPECT_DOUBLE_EQ(hw.level(), 11.25);
  // b = 0.4*(11.25 - 10) + 0.6*1 = 0.5 + 0.6 = 1.1.
  EXPECT_DOUBLE_EQ(hw.trend(), 1.1);
  // s = 0.3*(9.5 - 10 - 1) + 0.7*(-2) = -0.45 - 1.4 = -1.85.
  EXPECT_DOUBLE_EQ(hw.SeasonalFromNext()[1], -1.85);
}

TEST(HoltWintersTest, SeasonalFromNextSetStateRoundtrip) {
  const size_t m = 5;
  std::vector<double> y = SeasonalSeries(4 * m, m, 3.0, 0.1, 1.0);
  HoltWinters hw(m, HwParams{0.3, 0.1, 0.2});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);

  HoltWinters copy(m, hw.params());
  copy.SetState(hw.level(), hw.trend(), hw.SeasonalFromNext());
  for (size_t h = 1; h <= 2 * m; ++h) {
    EXPECT_DOUBLE_EQ(copy.Forecast(h), hw.Forecast(h)) << "h=" << h;
  }
}

TEST(HoltWintersTest, SsePrefersCorrectParametersOnSmoothSeries) {
  const size_t m = 4;
  std::vector<double> y = SeasonalSeries(12 * m, m, 5.0, 0.2, 2.0);
  // A deterministic series is tracked much better with responsive
  // parameters than with frozen ones.
  const double sse_good = HoltWintersSse(y, m, HwParams{0.8, 0.5, 0.5});
  const double sse_bad = HoltWintersSse(y, m, HwParams{0.01, 0.0, 0.0});
  EXPECT_LT(sse_good, sse_bad);
}

TEST(HoltWintersTest, PeriodOneDegeneratesGracefully) {
  std::vector<double> y = {1, 2, 3, 4, 5, 6};
  HoltWinters hw(1, HwParams{0.5, 0.5, 0.1});
  hw.InitializeFromHistory(y);
  for (double v : y) hw.Update(v);
  EXPECT_NEAR(hw.Forecast(1), 7.0, 0.6);
}

}  // namespace
}  // namespace sofia
