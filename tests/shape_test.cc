#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace sofia {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s({3, 4, 5});
  EXPECT_EQ(s.order(), 3u);
  EXPECT_EQ(s.dim(1), 4u);
  EXPECT_EQ(s.NumElements(), 60u);
  EXPECT_EQ(s.ToString(), "3x4x5");
}

TEST(ShapeTest, StridesFirstModeFastest) {
  Shape s({3, 4, 5});
  EXPECT_EQ(s.stride(0), 1u);
  EXPECT_EQ(s.stride(1), 3u);
  EXPECT_EQ(s.stride(2), 12u);
}

TEST(ShapeTest, LinearizeMatchesStrides) {
  Shape s({3, 4, 5});
  EXPECT_EQ(s.Linearize({0, 0, 0}), 0u);
  EXPECT_EQ(s.Linearize({1, 0, 0}), 1u);
  EXPECT_EQ(s.Linearize({0, 1, 0}), 3u);
  EXPECT_EQ(s.Linearize({0, 0, 1}), 12u);
  EXPECT_EQ(s.Linearize({2, 3, 4}), 59u);
}

TEST(ShapeTest, NextVisitsAllInLinearOrder) {
  Shape s({2, 3});
  std::vector<size_t> idx(2, 0);
  for (size_t linear = 0; linear < s.NumElements(); ++linear) {
    EXPECT_EQ(s.Linearize(idx), linear);
    const bool more = s.Next(&idx);
    EXPECT_EQ(more, linear + 1 < s.NumElements());
  }
}

TEST(ShapeTest, RemoveAndAppendMode) {
  Shape s({3, 4, 5});
  Shape removed = s.RemoveMode(1);
  EXPECT_EQ(removed.dims(), (std::vector<size_t>{3, 5}));
  Shape appended = removed.AppendMode(7);
  EXPECT_EQ(appended.dims(), (std::vector<size_t>{3, 5, 7}));
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

// Property: Delinearize inverts Linearize for every element of many shapes.
class ShapeRoundtripTest
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(ShapeRoundtripTest, LinearizeDelinearizeRoundtrip) {
  Shape s(GetParam());
  for (size_t linear = 0; linear < s.NumElements(); ++linear) {
    std::vector<size_t> idx = s.Delinearize(linear);
    EXPECT_EQ(s.Linearize(idx), linear);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeRoundtripTest,
    ::testing::Values(std::vector<size_t>{7}, std::vector<size_t>{3, 5},
                      std::vector<size_t>{2, 3, 4},
                      std::vector<size_t>{4, 1, 3},
                      std::vector<size_t>{2, 2, 2, 2},
                      std::vector<size_t>{1, 6, 1, 2},
                      std::vector<size_t>{5, 4, 3, 2, 1}));

}  // namespace
}  // namespace sofia
