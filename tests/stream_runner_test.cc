#include "eval/stream_runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/mast.hpp"
#include "baselines/online_sgd.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"

namespace sofia {
namespace {

/// Test double: "imputes" every slice with a constant value; init phase
/// returns the observed data untouched. Forecast returns the constant too.
class ConstantMethod : public StreamingMethod {
 public:
  ConstantMethod(double value, size_t window)
      : value_(value), window_(window) {}

  std::string name() const override { return "Constant"; }
  size_t init_window() const override { return window_; }

  std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices,
      const std::vector<Mask>& masks) override {
    initialized_ = true;
    std::vector<DenseTensor> out;
    for (size_t t = 0; t < slices.size(); ++t) {
      out.push_back(masks[t].Apply(slices[t]));
    }
    return out;
  }

  StepResult StepLazy(const DenseTensor& y, const Mask&,
                      std::shared_ptr<const CooList>) override {
    ++steps_;
    last_shape_ = y.shape();
    return StepResult::Dense(DenseTensor(y.shape(), value_));
  }

  bool SupportsForecast() const override { return true; }
  StepResult ForecastLazy(size_t) const override {
    return StepResult::Dense(DenseTensor(last_shape_, value_));
  }

  bool initialized_ = false;
  int steps_ = 0;

 private:
  double value_;
  size_t window_;
  Shape last_shape_;
};

std::vector<DenseTensor> ConstantTruth(size_t steps, double value) {
  return std::vector<DenseTensor>(steps, DenseTensor(Shape({3, 2}), value));
}

TEST(StreamRunnerTest, PerfectMethodScoresZeroNre) {
  std::vector<DenseTensor> truth = ConstantTruth(10, 5.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 1);
  ConstantMethod method(5.0, 0);
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_EQ(res.nre.size(), 10u);
  for (double v : res.nre) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(res.rae, 0.0);
  EXPECT_EQ(method.steps_, 10);
  EXPECT_FALSE(method.initialized_);
}

TEST(StreamRunnerTest, WrongMethodScoresExpectedNre) {
  std::vector<DenseTensor> truth = ConstantTruth(6, 2.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 2);
  ConstantMethod method(4.0, 0);  // NRE = |4-2|/2 = 1 per slice.
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_NEAR(res.rae, 1.0, 1e-12);
}

TEST(StreamRunnerTest, InitWindowIsScoredFromInitializeOutput) {
  std::vector<DenseTensor> truth = ConstantTruth(8, 3.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 3);
  ConstantMethod method(99.0, 4);  // Init returns the observed data: NRE 0.
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_TRUE(method.initialized_);
  EXPECT_EQ(method.steps_, 4);  // Only the post-init slices hit Step().
  for (size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(res.nre[t], 0.0);
  for (size_t t = 4; t < 8; ++t) EXPECT_DOUBLE_EQ(res.nre[t], 32.0);
  // rae averages everything; rae_post_init only the streamed part.
  EXPECT_DOUBLE_EQ(res.rae, 16.0);
  EXPECT_DOUBLE_EQ(res.rae_post_init, 32.0);
  EXPECT_EQ(res.step_seconds.size(), 4u);
}

std::vector<DenseTensor> SinusoidTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

TEST(StreamRunnerTest, ComparisonLazyMatchesForcedDenseBitwise) {
  // The lazy pipeline must be invisible in the scores: driving StepLazy and
  // gathering from the structured handles yields the same bits as
  // materializing every estimate and reading the same entries.
  std::vector<DenseTensor> truth = SinusoidTruth(16, 41);
  CorruptedStream stream = Corrupt(truth, {30.0, 5.0, 2.0}, 42);

  OnlineSgdOptions sgd_options;
  sgd_options.rank = 3;
  MastOptions mast_options;
  mast_options.rank = 3;

  StreamEvalOptions lazy_options;
  OnlineSgd sgd_lazy(sgd_options);
  Mast mast_lazy(mast_options);
  std::vector<StreamingMethod*> lazy_methods = {&sgd_lazy, &mast_lazy};
  std::vector<MethodRunResult> lazy =
      RunImputationComparison(lazy_methods, stream, truth, lazy_options);

  StreamEvalOptions dense_options;
  dense_options.force_dense = true;
  OnlineSgd sgd_dense(sgd_options);
  Mast mast_dense(mast_options);
  std::vector<StreamingMethod*> dense_methods = {&sgd_dense, &mast_dense};
  std::vector<MethodRunResult> dense =
      RunImputationComparison(dense_methods, stream, truth, dense_options);

  ASSERT_EQ(lazy.size(), 2u);
  EXPECT_EQ(lazy[0].name, "OnlineSGD");
  EXPECT_EQ(lazy[1].name, "MAST");
  for (size_t m = 0; m < lazy.size(); ++m) {
    ASSERT_EQ(lazy[m].run.nre.size(), truth.size());
    ASSERT_EQ(dense[m].run.nre.size(), truth.size());
    for (size_t t = 0; t < truth.size(); ++t) {
      EXPECT_EQ(lazy[m].run.nre[t], dense[m].run.nre[t]) << "t=" << t;
      EXPECT_EQ(lazy[m].run.observed_nre[t], dense[m].run.observed_nre[t]);
      EXPECT_EQ(lazy[m].run.missing_nre[t], dense[m].run.missing_nre[t]);
    }
  }
}

TEST(StreamRunnerTest, ComparisonModeHonorsInitWindows) {
  std::vector<DenseTensor> truth = ConstantTruth(8, 3.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 43);
  ConstantMethod windowed(99.0, 4);  // Init returns observed data: NRE 0.
  ConstantMethod plain(3.0, 0);      // Perfect from the first step.
  std::vector<StreamingMethod*> methods = {&windowed, &plain};
  std::vector<MethodRunResult> res =
      RunImputationComparison(methods, stream, truth);

  EXPECT_TRUE(windowed.initialized_);
  EXPECT_EQ(windowed.steps_, 4);  // Only post-window slices hit StepLazy().
  EXPECT_EQ(plain.steps_, 8);
  ASSERT_EQ(res[0].run.nre.size(), 8u);
  // Fully observed stream: the scored set is exactly Ω, and a constant
  // estimate vs constant truth has the same NRE on any entry subset, so
  // the expectations match the dense protocol's values.
  for (size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(res[0].run.nre[t], 0.0);
  for (size_t t = 4; t < 8; ++t) EXPECT_DOUBLE_EQ(res[0].run.nre[t], 32.0);
  for (size_t t = 0; t < 8; ++t) {
    EXPECT_DOUBLE_EQ(res[0].run.missing_nre[t], 0.0);  // Nothing missing.
  }
  EXPECT_DOUBLE_EQ(res[0].run.rae_post_init, 32.0);
  EXPECT_EQ(res[0].run.step_seconds.size(), 4u);
  EXPECT_DOUBLE_EQ(res[1].run.rae, 0.0);
}

TEST(StreamRunnerTest, ComparisonScoresObservedAndHeldOutPartitions) {
  // 50% missing, wrong-by-2x constant estimate: the observed and held-out
  // partitions both score |4-2|/2 = 1, and so does their union.
  std::vector<DenseTensor> truth = ConstantTruth(6, 2.0);
  CorruptedStream stream = Corrupt(truth, {50.0, 0.0, 0.0}, 44);
  ConstantMethod method(4.0, 0);
  std::vector<StreamingMethod*> methods = {&method};
  std::vector<MethodRunResult> res =
      RunImputationComparison(methods, stream, truth);
  for (size_t t = 0; t < truth.size(); ++t) {
    EXPECT_NEAR(res[0].run.nre[t], 1.0, 1e-12);
    EXPECT_NEAR(res[0].run.observed_nre[t], 1.0, 1e-12);
    EXPECT_NEAR(res[0].run.missing_nre[t], 1.0, 1e-12);
  }
}

TEST(StreamRunnerTest, ForecastProtocolComputesAfeOnHeldOutTail) {
  std::vector<DenseTensor> truth = ConstantTruth(10, 2.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 4);
  ConstantMethod method(3.0, 0);  // Forecast NRE = 0.5 everywhere.
  const double afe = RunForecast(&method, stream, truth, /*horizon=*/3);
  EXPECT_NEAR(afe, 0.5, 1e-12);
  EXPECT_EQ(method.steps_, 7);  // Only the training prefix is consumed.
}

TEST(StreamRunnerTest, SampledForecastProtocolMatchesDenseOnConstants) {
  // Constant forecasts vs constant truth: the sampled held-out NRE equals
  // the full-volume NRE, and the lazy and forced-dense routes agree.
  std::vector<DenseTensor> truth = ConstantTruth(10, 2.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 4);
  StreamEvalOptions options;
  options.max_eval_entries = 4;  // Fewer than the 6 entries per slice.
  ConstantMethod lazy(3.0, 0);
  const double lazy_afe = RunForecast(&lazy, stream, truth, 3, options);
  options.force_dense = true;
  ConstantMethod dense(3.0, 0);
  const double dense_afe = RunForecast(&dense, stream, truth, 3, options);
  EXPECT_NEAR(lazy_afe, 0.5, 1e-12);
  EXPECT_EQ(lazy_afe, dense_afe);
}

}  // namespace
}  // namespace sofia
