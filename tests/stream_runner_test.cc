#include "eval/stream_runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/mast.hpp"
#include "baselines/online_sgd.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"

namespace sofia {
namespace {

/// Test double: "imputes" every slice with a constant value; init phase
/// returns the observed data untouched. Forecast returns the constant too.
class ConstantMethod : public StreamingMethod {
 public:
  ConstantMethod(double value, size_t window)
      : value_(value), window_(window) {}

  std::string name() const override { return "Constant"; }
  size_t init_window() const override { return window_; }

  std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices,
      const std::vector<Mask>& masks) override {
    initialized_ = true;
    std::vector<DenseTensor> out;
    for (size_t t = 0; t < slices.size(); ++t) {
      out.push_back(masks[t].Apply(slices[t]));
    }
    return out;
  }

  DenseTensor Step(const DenseTensor& y, const Mask&) override {
    ++steps_;
    last_shape_ = y.shape();
    return DenseTensor(y.shape(), value_);
  }

  bool SupportsForecast() const override { return true; }
  DenseTensor Forecast(size_t) const override {
    return DenseTensor(last_shape_, value_);
  }

  bool initialized_ = false;
  int steps_ = 0;

 private:
  double value_;
  size_t window_;
  Shape last_shape_;
};

std::vector<DenseTensor> ConstantTruth(size_t steps, double value) {
  return std::vector<DenseTensor>(steps, DenseTensor(Shape({3, 2}), value));
}

TEST(StreamRunnerTest, PerfectMethodScoresZeroNre) {
  std::vector<DenseTensor> truth = ConstantTruth(10, 5.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 1);
  ConstantMethod method(5.0, 0);
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_EQ(res.nre.size(), 10u);
  for (double v : res.nre) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(res.rae, 0.0);
  EXPECT_EQ(method.steps_, 10);
  EXPECT_FALSE(method.initialized_);
}

TEST(StreamRunnerTest, WrongMethodScoresExpectedNre) {
  std::vector<DenseTensor> truth = ConstantTruth(6, 2.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 2);
  ConstantMethod method(4.0, 0);  // NRE = |4-2|/2 = 1 per slice.
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_NEAR(res.rae, 1.0, 1e-12);
}

TEST(StreamRunnerTest, InitWindowIsScoredFromInitializeOutput) {
  std::vector<DenseTensor> truth = ConstantTruth(8, 3.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 3);
  ConstantMethod method(99.0, 4);  // Init returns the observed data: NRE 0.
  StreamRunResult res = RunImputation(&method, stream, truth);
  EXPECT_TRUE(method.initialized_);
  EXPECT_EQ(method.steps_, 4);  // Only the post-init slices hit Step().
  for (size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(res.nre[t], 0.0);
  for (size_t t = 4; t < 8; ++t) EXPECT_DOUBLE_EQ(res.nre[t], 32.0);
  // rae averages everything; rae_post_init only the streamed part.
  EXPECT_DOUBLE_EQ(res.rae, 16.0);
  EXPECT_DOUBLE_EQ(res.rae_post_init, 32.0);
  EXPECT_EQ(res.step_seconds.size(), 4u);
}

std::vector<DenseTensor> SinusoidTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

TEST(StreamRunnerTest, ComparisonModeMatchesIndividualRuns) {
  // The shared per-step CooList must be invisible in the results: every
  // method scores exactly what its individual RunImputation run scores.
  std::vector<DenseTensor> truth = SinusoidTruth(16, 41);
  CorruptedStream stream = Corrupt(truth, {30.0, 5.0, 2.0}, 42);

  OnlineSgdOptions sgd_options;
  sgd_options.rank = 3;
  MastOptions mast_options;
  mast_options.rank = 3;

  OnlineSgd sgd_solo(sgd_options);
  Mast mast_solo(mast_options);
  StreamRunResult sgd_run = RunImputation(&sgd_solo, stream, truth);
  StreamRunResult mast_run = RunImputation(&mast_solo, stream, truth);

  OnlineSgd sgd_shared(sgd_options);
  Mast mast_shared(mast_options);
  std::vector<StreamingMethod*> methods = {&sgd_shared, &mast_shared};
  std::vector<MethodRunResult> comparison =
      RunImputationComparison(methods, stream, truth);

  ASSERT_EQ(comparison.size(), 2u);
  EXPECT_EQ(comparison[0].name, "OnlineSGD");
  EXPECT_EQ(comparison[1].name, "MAST");
  ASSERT_EQ(comparison[0].run.nre.size(), sgd_run.nre.size());
  ASSERT_EQ(comparison[1].run.nre.size(), mast_run.nre.size());
  for (size_t t = 0; t < truth.size(); ++t) {
    // Identical bits: the shared pattern equals the internally built one.
    EXPECT_EQ(comparison[0].run.nre[t], sgd_run.nre[t]) << "t=" << t;
    EXPECT_EQ(comparison[1].run.nre[t], mast_run.nre[t]) << "t=" << t;
  }
}

TEST(StreamRunnerTest, ComparisonModeHonorsInitWindows) {
  std::vector<DenseTensor> truth = ConstantTruth(8, 3.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 43);
  ConstantMethod windowed(99.0, 4);  // Init returns observed data: NRE 0.
  ConstantMethod plain(3.0, 0);      // Perfect from the first step.
  std::vector<StreamingMethod*> methods = {&windowed, &plain};
  std::vector<MethodRunResult> res =
      RunImputationComparison(methods, stream, truth);

  EXPECT_TRUE(windowed.initialized_);
  EXPECT_EQ(windowed.steps_, 4);  // Only post-window slices hit Step().
  EXPECT_EQ(plain.steps_, 8);
  ASSERT_EQ(res[0].run.nre.size(), 8u);
  for (size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(res[0].run.nre[t], 0.0);
  for (size_t t = 4; t < 8; ++t) EXPECT_DOUBLE_EQ(res[0].run.nre[t], 32.0);
  EXPECT_DOUBLE_EQ(res[0].run.rae_post_init, 32.0);
  EXPECT_EQ(res[0].run.step_seconds.size(), 4u);
  EXPECT_DOUBLE_EQ(res[1].run.rae, 0.0);
}

TEST(StreamRunnerTest, ForecastProtocolComputesAfeOnHeldOutTail) {
  std::vector<DenseTensor> truth = ConstantTruth(10, 2.0);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 4);
  ConstantMethod method(3.0, 0);  // Forecast NRE = 0.5 everywhere.
  const double afe = RunForecast(&method, stream, truth, /*horizon=*/3);
  EXPECT_NEAR(afe, 0.5, 1e-12);
  EXPECT_EQ(method.steps_, 7);  // Only the training prefix is consumed.
}

}  // namespace
}  // namespace sofia
