#include "tensor/dense_tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(DenseTensorTest, ConstructionAndAccess) {
  DenseTensor t(Shape({2, 3}), 0.5);
  EXPECT_EQ(t.NumElements(), 6u);
  EXPECT_DOUBLE_EQ(t[4], 0.5);
  t.At({1, 2}) = 9.0;
  EXPECT_DOUBLE_EQ(t.At({1, 2}), 9.0);
  EXPECT_DOUBLE_EQ(t[t.shape().Linearize({1, 2})], 9.0);
}

TEST(DenseTensorTest, Arithmetic) {
  DenseTensor a(Shape({2, 2}), 1.0);
  DenseTensor b(Shape({2, 2}), 2.0);
  DenseTensor sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 3.0);
  DenseTensor diff = b - a;
  EXPECT_DOUBLE_EQ(diff[3], 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a[2], 4.0);
}

TEST(DenseTensorTest, Norms) {
  DenseTensor t(Shape({1, 2}));
  t[0] = 3.0;
  t[1] = -4.0;
  EXPECT_DOUBLE_EQ(t.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(t.MaxAbs(), 4.0);
  EXPECT_EQ(t.CountNonZero(), 2u);
  EXPECT_EQ(t.CountNonZero(3.5), 1u);
}

TEST(DenseTensorTest, StackAndSliceRoundtrip) {
  Rng rng(1);
  std::vector<DenseTensor> slices;
  for (int t = 0; t < 4; ++t) {
    slices.push_back(DenseTensor::RandomNormal(Shape({3, 2}), rng));
  }
  DenseTensor stacked = DenseTensor::StackSlices(slices);
  EXPECT_EQ(stacked.shape().dims(), (std::vector<size_t>{3, 2, 4}));
  for (size_t t = 0; t < 4; ++t) {
    DenseTensor back = stacked.SliceLastMode(t);
    DenseTensor diff = back - slices[t];
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
  }
}

TEST(DenseTensorTest, StackPlacesSlicesAtCorrectTemporalIndex) {
  DenseTensor s0(Shape({2}), 1.0);
  DenseTensor s1(Shape({2}), 2.0);
  DenseTensor stacked = DenseTensor::StackSlices({s0, s1});
  EXPECT_DOUBLE_EQ(stacked.At({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(stacked.At({1, 1}), 2.0);
}

TEST(DenseTensorTest, RandomNormalHasRoughlyZeroMean) {
  Rng rng(7);
  DenseTensor t = DenseTensor::RandomNormal(Shape({40, 40}), rng);
  double mean = 0.0;
  for (size_t k = 0; k < t.NumElements(); ++k) mean += t[k];
  mean /= static_cast<double>(t.NumElements());
  EXPECT_NEAR(mean, 0.0, 0.1);
}

}  // namespace
}  // namespace sofia
