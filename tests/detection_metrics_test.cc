#include <gtest/gtest.h>

#include "core/sofia_model.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"

namespace sofia {
namespace {

TEST(DetectionScoreTest, PrecisionRecallF1) {
  DetectionScore s;
  s.true_positives = 8;
  s.false_positives = 2;
  s.false_negatives = 8;
  EXPECT_DOUBLE_EQ(s.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(s.Recall(), 0.5);
  EXPECT_NEAR(s.F1(), 2.0 * 0.8 * 0.5 / 1.3, 1e-12);
}

TEST(DetectionScoreTest, DegenerateCountsGiveZero) {
  DetectionScore s;
  EXPECT_DOUBLE_EQ(s.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.F1(), 0.0);
}

TEST(ScoreOutlierDetectionTest, CountsOnlyObservedEntries) {
  DenseTensor detected(Shape({2, 2}), 0.0);
  detected[0] = 5.0;  // Flagged, injected -> TP.
  detected[1] = 5.0;  // Flagged, clean -> FP.
  detected[2] = 0.0;  // Unflagged, injected -> FN.
  detected[3] = 5.0;  // Flagged but UNOBSERVED -> ignored.
  Mask injected(Shape({2, 2}), false);
  injected.Set(0, true);
  injected.Set(2, true);
  Mask observed(Shape({2, 2}), true);
  observed.Set(3, false);

  DetectionScore s = ScoreOutlierDetection(detected, injected, observed, 1.0);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
}

TEST(ScoreOutlierDetectionTest, AccumulateSums) {
  DetectionScore a{1, 2, 3};
  DetectionScore b{10, 20, 30};
  Accumulate(&a, b);
  EXPECT_EQ(a.true_positives, 11u);
  EXPECT_EQ(a.false_positives, 22u);
  EXPECT_EQ(a.false_negatives, 33u);
}

TEST(ScoreOutlierDetectionTest, SofiaStreamDetectionQuality) {
  // End-to-end: SOFIA's O_t scored against the injected outliers with the
  // shared metric helper — the sensor_anomaly example's logic, pinned.
  SofiaConfig config;
  config.rank = 3;
  config.period = 8;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.max_init_iterations = 10;
  SyntheticTensor syn = MakeSinusoidTensor(9, 7, 64, 3, 8, 201);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < 64; ++t) truth.push_back(syn.tensor.SliceLastMode(t));
  CorruptedStream stream = Corrupt(truth, {10.0, 10.0, 4.0}, 202);

  const size_t w = config.InitWindow();
  std::vector<DenseTensor> is(stream.slices.begin(),
                              stream.slices.begin() + w);
  std::vector<Mask> im(stream.masks.begin(), stream.masks.begin() + w);
  SofiaModel model = SofiaModel::Initialize(is, im, config);

  // Eq. (21) routes essentially the whole ±4·max spike into O_t, while
  // clean entries only carry forecast-error-sized residue — so a threshold
  // at a quarter of the injected magnitude must separate them cleanly.
  const double threshold = 0.25 * 4.0 * stream.max_abs;
  DetectionScore total;
  for (size_t t = w; t < truth.size(); ++t) {
    SofiaStepResult out = model.Step(stream.slices[t], stream.masks[t]);
    Accumulate(&total, ScoreOutlierDetection(out.outliers(),
                                             stream.outlier_positions[t],
                                             stream.masks[t], threshold));
  }
  EXPECT_GT(total.Recall(), 0.95);
  EXPECT_GT(total.Precision(), 0.95);
  EXPECT_GT(total.F1(), 0.95);
}

}  // namespace
}  // namespace sofia
