#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/sofia_model.hpp"
#include "linalg/vector_ops.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

/// Dense≡sparse parity harness for the dynamic update: the dense-scan
/// reference path and the CooList kernel path must produce the same
/// imputed/outlier/forecast slices and the same Holt-Winters state to
/// ≤ 1e-12, and the sparse path must be bitwise identical for every thread
/// count (the PR-1 determinism contract).

constexpr double kTol = 1e-12;

Mask RandomMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

/// Seasonal rank-R slices of arbitrary order: random non-temporal factors
/// and sinusoidal temporal rows, so Initialize() sees real HW structure.
std::vector<DenseTensor> MakeSlices(const std::vector<size_t>& dims,
                                    size_t rank, size_t period, size_t count,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (size_t d : dims) {
    factors.push_back(Matrix::Random(d, rank, rng, 0.0, 1.0));
  }
  std::vector<DenseTensor> slices;
  slices.reserve(count);
  std::vector<double> row(rank);
  for (size_t t = 0; t < count; ++t) {
    for (size_t r = 0; r < rank; ++r) {
      const double phase = 2.0 * M_PI * static_cast<double>(t) /
                           static_cast<double>(period);
      row[r] = std::sin(phase + static_cast<double>(r)) + 1.5 +
               0.3 * static_cast<double>(r);
    }
    slices.push_back(KruskalSlice(factors, row));
  }
  return slices;
}

SofiaConfig MakeConfig(size_t rank, size_t period) {
  SofiaConfig config;
  config.rank = rank;
  config.period = period;
  config.init_seasons = 3;
  config.max_init_iterations = 4;
  config.max_als_iterations = 20;
  return config;
}

SofiaModel MakeModel(const std::vector<size_t>& dims, size_t rank,
                     uint64_t seed) {
  SofiaConfig config = MakeConfig(rank, /*period=*/4);
  config.seed = seed;
  const size_t w = config.InitWindow();
  std::vector<DenseTensor> slices = MakeSlices(dims, rank, config.period,
                                               w, seed);
  Rng rng(seed + 1);
  std::vector<Mask> masks;
  for (size_t t = 0; t < w; ++t) {
    masks.push_back(RandomMask(slices[t].shape(), 0.8, rng));
  }
  return SofiaModel::Initialize(slices, masks, config);
}

/// Checkpoint-based clone: Serialize/Deserialize restores the exact
/// streaming state, so both kernel paths start from identical bits.
SofiaModel Clone(const SofiaModel& model) {
  std::stringstream buffer;
  model.Serialize(buffer);
  return SofiaModel::Deserialize(buffer);
}

double MaxAbsDiff(const DenseTensor& a, const DenseTensor& b) {
  DenseTensor diff = a;
  diff -= b;
  return diff.MaxAbs();
}

void ExpectStateNear(const SofiaModel& a, const SofiaModel& b, double tol) {
  EXPECT_LE(MaxAbsDiffVec(a.level(), b.level()), tol);
  EXPECT_LE(MaxAbsDiffVec(a.trend(), b.trend()), tol);
  EXPECT_LE(MaxAbsDiffVec(a.next_season(), b.next_season()), tol);
  EXPECT_LE(MaxAbsDiffVec(a.last_temporal_row(), b.last_temporal_row()), tol);
  EXPECT_LE(MaxAbsDiff(a.error_scale(), b.error_scale()), tol);
}

/// Step a dense-path and a sparse-path clone of one model through the same
/// slices and compare every per-step output and all HW state.
void RunStepParity(const std::vector<size_t>& dims, size_t rank,
                   double missing, uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "rank=" << rank
                                    << " missing=" << missing
                                    << " seed=" << seed);
  SofiaModel base = MakeModel(dims, rank, seed);
  SofiaModel dense = Clone(base);
  dense.set_use_sparse_kernels(false);
  SofiaModel sparse = Clone(base);
  sparse.set_use_sparse_kernels(true);
  sparse.set_num_threads(2);

  const size_t kSteps = 5;
  std::vector<DenseTensor> slices =
      MakeSlices(dims, rank, /*period=*/4, 12 + kSteps, seed + 7);
  Rng rng(seed + 13);
  for (size_t t = 0; t < kSteps; ++t) {
    DenseTensor y = slices[12 + t];
    // One spiked entry per step exercises the Huber clip of Eq. (21).
    if (y.NumElements() > 0) y[t % y.NumElements()] += 25.0;
    Mask omega = RandomMask(y.shape(), 1.0 - missing, rng);

    SofiaStepResult a = dense.Step(y, omega);
    SofiaStepResult b = sparse.Step(y, omega);

    const double scale = 1.0 + a.imputed().MaxAbs();
    EXPECT_LE(MaxAbsDiff(a.forecast(), b.forecast()), kTol * scale);
    EXPECT_LE(MaxAbsDiff(a.outliers(), b.outliers()), kTol * scale);
    EXPECT_LE(MaxAbsDiff(a.imputed(), b.imputed()), kTol * scale);
    ASSERT_EQ(a.num_observed(), b.num_observed());
    EXPECT_EQ(a.observed_indices(), b.observed_indices());
    ExpectStateNear(dense, sparse, kTol * scale);
  }
}

TEST(SofiaStepSparseTest, DenseSparseStepParityOrderThree) {
  uint64_t seed = 510;
  for (size_t rank : {1u, 3u, 8u}) {
    for (double missing : {0.0, 0.5, 0.99}) {
      RunStepParity({6, 5}, rank, missing, seed++);
    }
  }
}

TEST(SofiaStepSparseTest, DenseSparseStepParityOrderFour) {
  uint64_t seed = 530;
  for (size_t rank : {2u, 5u}) {
    for (double missing : {0.0, 0.5, 0.99}) {
      RunStepParity({4, 3, 3}, rank, missing, seed++);
    }
  }
}

/// The sparse path must be bitwise identical for every thread count: work
/// units (mode slices, fixed record blocks) are owned by single threads and
/// combined in a thread-count-independent order.
TEST(SofiaStepSparseTest, StepBitwiseDeterministicAcrossThreadCounts) {
  const std::vector<size_t> dims = {7, 6};
  SofiaModel base = MakeModel(dims, /*rank=*/4, 551);
  const size_t kSteps = 4;
  std::vector<DenseTensor> slices = MakeSlices(dims, 4, 4, 12 + kSteps, 557);

  std::vector<SofiaModel> models;
  for (size_t threads : {1u, 2u, 8u}) {
    SofiaModel m = Clone(base);
    m.set_use_sparse_kernels(true);
    m.set_num_threads(threads);
    models.push_back(std::move(m));
  }
  Rng rng(559);
  for (size_t t = 0; t < kSteps; ++t) {
    const DenseTensor& y = slices[12 + t];
    Mask omega = RandomMask(y.shape(), 0.4, rng);
    SofiaStepResult ref = models[0].Step(y, omega);
    for (size_t i = 1; i < models.size(); ++i) {
      SofiaStepResult out = models[i].Step(y, omega);
      EXPECT_EQ(MaxAbsDiff(ref.imputed(), out.imputed()), 0.0);
      EXPECT_EQ(ref.observed_outliers(), out.observed_outliers());
      EXPECT_EQ(ref.observed_forecast(), out.observed_forecast());
      EXPECT_EQ(ref.temporal_row(), out.temporal_row());
      EXPECT_EQ(models[0].level(), models[i].level());
      EXPECT_EQ(models[0].trend(), models[i].trend());
    }
  }
}

/// Kernel-level parity: CooStepGradients against the dense-scan reference,
/// at several densities and orders, plus thread determinism.
TEST(SofiaStepSparseTest, CooStepGradientsMatchDenseReference) {
  Rng rng(571);
  for (const auto& dims : {std::vector<size_t>{7, 5},
                           std::vector<size_t>{4, 3, 5}}) {
    Shape shape(dims);
    const size_t rank = 4;
    std::vector<Matrix> factors;
    for (size_t d : dims) {
      factors.push_back(Matrix::RandomNormal(d, rank, rng));
    }
    std::vector<double> u_hat = rng.NormalVector(rank);
    DenseTensor y = DenseTensor::RandomNormal(shape, rng);
    DenseTensor o = DenseTensor::RandomNormal(shape, rng, 0.2);
    for (double density : {0.0, 0.1, 0.6, 1.0}) {
      Mask omega = RandomMask(shape, density, rng);
      DenseTensor forecast = KruskalSlice(factors, u_hat);
      StepGradients dense =
          DenseStepGradients(y, omega, o, forecast, factors, u_hat);

      CooList coo = CooList::Build(omega);
      std::vector<double> resid(coo.nnz());
      for (size_t k = 0; k < coo.nnz(); ++k) {
        const size_t lin = coo.LinearIndex(k);
        resid[k] = y[lin] - o[lin] - forecast[lin];
      }
      StepGradients sparse =
          CooStepGradients(coo, resid, factors, u_hat, /*num_threads=*/1);
      StepGradients threaded =
          CooStepGradients(coo, resid, factors, u_hat, /*num_threads=*/4);

      ASSERT_EQ(dense.row_grads.size(), sparse.row_grads.size());
      for (size_t n = 0; n < dense.row_grads.size(); ++n) {
        EXPECT_LE(sparse.row_grads[n].MaxAbsDiff(dense.row_grads[n]), kTol);
        EXPECT_LE(MaxAbsDiffVec(sparse.row_trace[n], dense.row_trace[n]),
                  kTol);
        // Thread-count invariance is exact, not approximate.
        EXPECT_EQ(threaded.row_grads[n].MaxAbsDiff(sparse.row_grads[n]), 0.0);
        EXPECT_EQ(threaded.row_trace[n], sparse.row_trace[n]);
      }
      EXPECT_LE(MaxAbsDiffVec(sparse.temporal_grad, dense.temporal_grad),
                kTol);
      EXPECT_NEAR(sparse.temporal_trace, dense.temporal_trace, kTol);
      EXPECT_EQ(threaded.temporal_grad, sparse.temporal_grad);
      EXPECT_EQ(threaded.temporal_trace, sparse.temporal_trace);
    }
  }
}

TEST(SofiaStepSparseTest, CooKruskalGatherMatchesKruskalSlice) {
  Rng rng(583);
  Shape shape({6, 4, 3});
  const size_t rank = 5;
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::RandomNormal(shape.dim(n), rank, rng));
  }
  std::vector<double> u_hat = rng.NormalVector(rank);
  DenseTensor slice = KruskalSlice(factors, u_hat);
  Mask omega = RandomMask(shape, 0.5, rng);
  CooList coo = CooList::Build(omega);
  std::vector<double> got = CooKruskalGather(coo, factors, u_hat);
  ASSERT_EQ(got.size(), coo.nnz());
  for (size_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_NEAR(got[k], slice[coo.LinearIndex(k)],
                kTol * (1.0 + std::fabs(got[k])));
  }
  EXPECT_EQ(CooKruskalGather(coo, factors, u_hat, 4), got);
}

/// The mask-reuse fast path: consecutive steps with an identical mask (the
/// fixed-sensor-outage case) build the CooList exactly once.
TEST(SofiaStepSparseTest, IdenticalMasksReuseTheStepPattern) {
  const std::vector<size_t> dims = {6, 5};
  SofiaModel model = MakeModel(dims, /*rank=*/3, 591);
  std::vector<DenseTensor> slices = MakeSlices(dims, 3, 4, 20, 593);
  Rng rng(595);
  Mask fixed = RandomMask(slices[0].shape(), 0.5, rng);

  EXPECT_EQ(model.step_pattern_builds(), 0u);
  for (size_t t = 12; t < 16; ++t) model.Step(slices[t], fixed);
  EXPECT_EQ(model.step_pattern_builds(), 1u);

  Mask changed = RandomMask(slices[0].shape(), 0.5, rng);
  model.Step(slices[16], changed);
  EXPECT_EQ(model.step_pattern_builds(), 2u);
  model.Step(slices[17], changed);
  EXPECT_EQ(model.step_pattern_builds(), 2u);
  // Flipping one bit invalidates the cache.
  changed.Set(0, !changed.Get(0));
  model.Step(slices[18], changed);
  EXPECT_EQ(model.step_pattern_builds(), 3u);
}

/// Copying a model branches the stream: learned state duplicates, derived
/// caches (pattern cache, pool) reset, and both branches step bit-for-bit.
TEST(SofiaStepSparseTest, CopiedModelStepsBitwiseIdentically) {
  const std::vector<size_t> dims = {6, 5};
  SofiaModel original = MakeModel(dims, /*rank=*/3, 611);
  std::vector<DenseTensor> slices = MakeSlices(dims, 3, 4, 16, 613);
  Rng rng(615);
  Mask omega = RandomMask(slices[0].shape(), 0.5, rng);
  original.Step(slices[12], omega);  // Warm the pattern cache first.

  SofiaModel copy = original;
  EXPECT_EQ(copy.step_pattern_builds(), 0u);  // Derived cache reset.
  for (size_t t = 13; t < 16; ++t) {
    SofiaStepResult a = original.Step(slices[t], omega);
    SofiaStepResult b = copy.Step(slices[t], omega);
    EXPECT_EQ(MaxAbsDiff(a.imputed(), b.imputed()), 0.0) << "t=" << t;
    EXPECT_EQ(a.observed_outliers(), b.observed_outliers()) << "t=" << t;
  }
  EXPECT_EQ(original.level(), copy.level());
  EXPECT_EQ(original.trend(), copy.trend());
}

/// Pure-forecasting / observed-entry workloads never materialize a dense
/// slice on the sparse path; the accessors materialize on first touch.
TEST(SofiaStepSparseTest, SparseStepResultIsLazyUntilAccessed) {
  const std::vector<size_t> dims = {6, 5};
  SofiaModel model = MakeModel(dims, /*rank=*/3, 601);
  std::vector<DenseTensor> slices = MakeSlices(dims, 3, 4, 13, 603);
  Rng rng(605);
  Mask omega = RandomMask(slices[0].shape(), 0.3, rng);

  SofiaStepResult out = model.Step(slices[12], omega);
  EXPECT_FALSE(out.imputed_materialized());
  EXPECT_FALSE(out.outliers_materialized());
  EXPECT_FALSE(out.forecast_materialized());
  EXPECT_EQ(out.num_observed(), omega.CountObserved());

  // First touch materializes; the dense views agree with the sparse ones.
  const DenseTensor& o = out.outliers();
  EXPECT_TRUE(out.outliers_materialized());
  for (size_t k = 0; k < out.num_observed(); ++k) {
    EXPECT_EQ(o[out.observed_indices()[k]], out.observed_outliers()[k]);
  }
  const DenseTensor& f = out.forecast();
  for (size_t k = 0; k < out.num_observed(); ++k) {
    EXPECT_NEAR(f[out.observed_indices()[k]], out.observed_forecast()[k],
                kTol * (1.0 + std::fabs(out.observed_forecast()[k])));
  }
  EXPECT_EQ(out.imputed().shape(), slices[12].shape());
  EXPECT_TRUE(out.imputed_materialized());
}

}  // namespace
}  // namespace sofia
