#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(QrTest, ReconstructsInput) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(8, 4, rng);
  QrFactors f = QrFactorize(a);
  Matrix qr = MatMul(f.q, f.r);
  EXPECT_LT(qr.MaxAbsDiff(a), 1e-10);
}

TEST(QrTest, QHasOrthonormalColumns) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(10, 5, rng);
  QrFactors f = QrFactorize(a);
  Matrix qtq = MatTMul(f.q, f.q);
  EXPECT_LT(qtq.MaxAbsDiff(Matrix::Identity(5)), 1e-10);
}

TEST(QrTest, RIsUpperTriangular) {
  Rng rng(6);
  Matrix a = Matrix::RandomNormal(7, 3, rng);
  QrFactors f = QrFactorize(a);
  for (size_t i = 1; i < 3; ++i) {
    for (size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(f.r(i, j), 0.0);
  }
}

TEST(QrTest, LeastSquaresExactForSquareSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  std::vector<double> x = LeastSquares(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(QrTest, LeastSquaresMatchesNormalEquations) {
  Rng rng(8);
  Matrix a = Matrix::RandomNormal(20, 4, rng);
  std::vector<double> b = rng.NormalVector(20);
  std::vector<double> x_qr = LeastSquares(a, b);
  // Normal equations: (A^T A) x = A^T b.
  std::vector<double> x_ne = SolveLinear(Gram(a), MatTVec(a, b));
  EXPECT_LT(MaxAbsDiffVec(x_qr, x_ne), 1e-8);
}

// Property: least-squares residual is orthogonal to the column space.
class QrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QrPropertyTest, ResidualOrthogonalToColumns) {
  Rng rng(GetParam());
  const size_t m = 10 + GetParam();
  const size_t n = 2 + GetParam() % 4;
  Matrix a = Matrix::RandomNormal(m, n, rng);
  std::vector<double> b = rng.NormalVector(m);
  std::vector<double> x = LeastSquares(a, b);
  std::vector<double> resid = Sub(b, MatVec(a, x));
  std::vector<double> proj = MatTVec(a, resid);
  EXPECT_LT(Norm2(proj), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace sofia
