#include "timeseries/hw_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sofia {
namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<double> MakeSeries(size_t n, size_t m, double noise,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t t = 0; t < n; ++t) {
    y[t] = 4.0 + 0.05 * static_cast<double>(t) +
           1.5 * std::sin(kTwoPi * static_cast<double>(t % m) /
                          static_cast<double>(m)) +
           rng.Normal(0.0, noise);
  }
  return y;
}

TEST(HwFitTest, ParametersStayInBox) {
  std::vector<double> y = MakeSeries(60, 6, 0.1, 1);
  HwFit fit = FitHoltWinters(y, 6);
  EXPECT_GE(fit.params.alpha, 0.0);
  EXPECT_LE(fit.params.alpha, 1.0);
  EXPECT_GE(fit.params.beta, 0.0);
  EXPECT_LE(fit.params.beta, 1.0);
  EXPECT_GE(fit.params.gamma, 0.0);
  EXPECT_LE(fit.params.gamma, 1.0);
}

TEST(HwFitTest, FittedSseNotWorseThanDefaults) {
  std::vector<double> y = MakeSeries(80, 8, 0.2, 2);
  HwFit fit = FitHoltWinters(y, 8);
  const double default_sse = HoltWintersSse(y, 8, HwParams{});
  EXPECT_LE(fit.sse, default_sse + 1e-9);
}

TEST(HwFitTest, ForecastsSeasonalSeriesAccurately) {
  const size_t m = 6;
  std::vector<double> y = MakeSeries(12 * m, m, 0.05, 3);
  HwFit fit = FitHoltWinters(y, m);
  HoltWinters hw = ModelFromFit(fit, m);
  // Compare 1..m step forecasts against the clean generating process.
  for (size_t h = 1; h <= m; ++h) {
    const size_t t = y.size() + h - 1;
    const double expected =
        4.0 + 0.05 * static_cast<double>(t) +
        1.5 * std::sin(kTwoPi * static_cast<double>(t % m) /
                       static_cast<double>(m));
    EXPECT_NEAR(hw.Forecast(h), expected, 0.5) << "h=" << h;
  }
}

TEST(HwFitTest, ModelFromFitReproducesFinalState) {
  std::vector<double> y = MakeSeries(48, 4, 0.1, 4);
  HwFit fit = FitHoltWinters(y, 4);
  HoltWinters hw = ModelFromFit(fit, 4);
  EXPECT_DOUBLE_EQ(hw.level(), fit.level);
  EXPECT_DOUBLE_EQ(hw.trend(), fit.trend);
  EXPECT_DOUBLE_EQ(hw.ForecastNext(),
                   fit.level + fit.trend + fit.seasonal[0]);
}

TEST(HwFitTest, SseIsSumOfSquaredOneStepErrors) {
  std::vector<double> y = MakeSeries(40, 4, 0.3, 5);
  HwParams params{0.4, 0.2, 0.3};
  HoltWinters hw(4, params);
  hw.InitializeFromHistory(y);
  double sse = 0.0;
  for (double v : y) {
    const double e = v - hw.ForecastNext();
    sse += e * e;
    hw.Update(v);
  }
  EXPECT_NEAR(HoltWintersSse(y, 4, params), sse, 1e-9);
}

}  // namespace
}  // namespace sofia
