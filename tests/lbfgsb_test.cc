#include "optim/lbfgsb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sofia {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LbfgsbTest, MinimizesUnconstrainedQuadratic) {
  // f(x) = (x0 - 3)^2 + 2 (x1 + 1)^2.
  FunctionObjective obj([](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  });
  LbfgsbResult res =
      LbfgsbMinimize(obj, {0.0, 0.0}, {-kInf, -kInf}, {kInf, kInf});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 3.0, 1e-5);
  EXPECT_NEAR(res.x[1], -1.0, 1e-5);
  EXPECT_NEAR(res.f, 0.0, 1e-9);
}

TEST(LbfgsbTest, SolvesRosenbrock) {
  FunctionObjective obj([](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  });
  LbfgsbOptions options;
  options.max_iterations = 500;
  LbfgsbResult res = LbfgsbMinimize(obj, {-1.2, 1.0}, {-kInf, -kInf},
                                    {kInf, kInf}, options);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(LbfgsbTest, RespectsActiveBound) {
  // Unconstrained minimum at x = 3, but the box caps x at 1.
  FunctionObjective obj([](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  });
  LbfgsbResult res = LbfgsbMinimize(obj, {0.0}, {0.0}, {1.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-9);
}

TEST(LbfgsbTest, BoundsOnBothSides) {
  // Minimum of (x+2)^2 over [-1, 1] is at the lower bound.
  FunctionObjective obj([](const std::vector<double>& x) {
    return (x[0] + 2.0) * (x[0] + 2.0);
  });
  LbfgsbResult res = LbfgsbMinimize(obj, {0.5}, {-1.0}, {1.0});
  EXPECT_NEAR(res.x[0], -1.0, 1e-9);
}

TEST(LbfgsbTest, ClampsInfeasibleStart) {
  FunctionObjective obj(
      [](const std::vector<double>& x) { return x[0] * x[0]; });
  LbfgsbResult res = LbfgsbMinimize(obj, {5.0}, {1.0}, {2.0});
  EXPECT_GE(res.x[0], 1.0);
  EXPECT_LE(res.x[0], 2.0);
  EXPECT_NEAR(res.x[0], 1.0, 1e-9);
}

TEST(LbfgsbTest, MixedActiveAndFreeVariables) {
  // f = (x0 - 5)^2 + (x1 - 0.5)^2 over [0,1]^2: x0 hits its bound, x1 free.
  FunctionObjective obj([](const std::vector<double>& x) {
    return (x[0] - 5.0) * (x[0] - 5.0) + (x[1] - 0.5) * (x[1] - 0.5);
  });
  LbfgsbResult res =
      LbfgsbMinimize(obj, {0.2, 0.2}, {0.0, 0.0}, {1.0, 1.0});
  EXPECT_NEAR(res.x[0], 1.0, 1e-7);
  EXPECT_NEAR(res.x[1], 0.5, 1e-5);
}

TEST(LbfgsbTest, HigherDimensionalQuadratic) {
  // f = sum_i i * (x_i - 1/i)^2 in 10 dimensions.
  FunctionObjective obj([](const std::vector<double>& x) {
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double w = static_cast<double>(i + 1);
      const double d = x[i] - 1.0 / w;
      s += w * d * d;
    }
    return s;
  });
  std::vector<double> x0(10, 0.0), lo(10, -kInf), hi(10, kInf);
  LbfgsbResult res = LbfgsbMinimize(obj, x0, lo, hi);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(res.x[i], 1.0 / static_cast<double>(i + 1), 1e-4);
  }
}

TEST(NumericGradientTest, MatchesAnalyticGradient) {
  FunctionObjective obj([](const std::vector<double>& x) {
    return x[0] * x[0] * x[1] + 3.0 * x[1];
  });
  std::vector<double> grad;
  NumericGradient(obj, {2.0, 5.0}, &grad);
  EXPECT_NEAR(grad[0], 2.0 * 2.0 * 5.0, 1e-5);  // 2 x0 x1.
  EXPECT_NEAR(grad[1], 2.0 * 2.0 + 3.0, 1e-5);  // x0^2 + 3.
}

}  // namespace
}  // namespace sofia
