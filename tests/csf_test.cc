// The CSF storage subsystem, end to end:
//  - CsfTensor trees reproduce the exact coordinate sets of the CooList
//    they compile, across orders, densities, and degenerate shapes;
//  - every CSF kernel agrees with its Coo twin and the dense reference to
//    ≤1e-12 (the downward-prefix kernels bitwise), including empty Ω,
//    full Ω, single-fiber and length-1 modes, ranks 1..8;
//  - CSF kernels are bitwise identical for every thread count;
//  - RunImputationComparison under csf storage matches the coo run to
//    ≤1e-12 for all nine streaming methods;
//  - the steady-state comparison loop performs zero O(volume) scans:
//    one pattern build per distinct mask run, SparseMask reuse compares,
//    no dense-mask byte compares (counter-pinned), and the rebuild
//    telemetry logs bitmap deltas instead of rebuilding silently.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/cp_wopt_stream.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/observed_sweep.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_runner.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/products.hpp"
#include "tensor/sparse_kernels.hpp"
#include "tensor/sparse_mask.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

Mask RandomMask(const Shape& shape, double density, uint64_t seed) {
  Rng rng(seed);
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

std::vector<Matrix> RandomFactors(const Shape& shape, size_t rank,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::Random(shape.dim(n), rank, rng, -1.0, 1.0));
  }
  return factors;
}

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  return v;
}

/// Shapes the parity sweep runs over: order 3 and 4, a single-fiber shape,
/// and a degenerate length-1 mode.
std::vector<Shape> ParityShapes() {
  return {Shape({6, 5, 4}), Shape({5, 4, 3, 2}), Shape({4, 1, 1}),
          Shape({1, 7, 3})};
}

constexpr double kDensities[] = {0.0, 0.01, 0.05, 0.5, 1.0};
constexpr size_t kRanks[] = {1, 3, 8};

double Tol(double reference) { return 1e-12 * (1.0 + std::abs(reference)); }

// ------------------------------------------------------------- structure

TEST(CsfTensorTest, TreesReproduceTheRecordSet) {
  for (const Shape& shape : ParityShapes()) {
    for (double density : kDensities) {
      Mask omega = RandomMask(shape, density, 7 + shape.order());
      CooList coo = CooList::Build(omega);
      CsfTensor csf = CsfTensor::Build(coo);
      ASSERT_EQ(csf.order(), shape.order());
      ASSERT_EQ(csf.nnz(), coo.nnz());
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        const CsfTree& t = csf.tree(mode);
        ASSERT_EQ(t.root_mode, mode);
        ASSERT_EQ(t.record.size(), coo.nnz());
        ASSERT_EQ(t.ids[shape.order() - 1].size(), coo.nnz());
        // Walk every leaf's root-to-leaf path and check it spells exactly
        // the coordinates of the record it points to, in the bucket order.
        const std::vector<uint32_t>& perm = coo.ModeOrder(mode);
        std::vector<size_t> node_at(shape.order(), 0);  // Path per level.
        for (size_t leaf = 0; leaf < t.record.size(); ++leaf) {
          EXPECT_EQ(t.record[leaf], perm[leaf]);
          const uint32_t* c = coo.Coords(t.record[leaf]);
          // Leaf coordinate is stored directly.
          EXPECT_EQ(t.ids[shape.order() - 1][leaf],
                    c[t.level_mode[shape.order() - 1]]);
          // Ancestors: find the node owning this leaf per level via ptr.
          size_t node = leaf;
          for (size_t l = shape.order() - 1; l-- > 0;) {
            while (t.ptr[l][node_at[l] + 1] <= node) ++node_at[l];
            node = node_at[l];
            EXPECT_EQ(t.ids[l][node], c[t.level_mode[l]]);
          }
        }
        // Sentinels close every level at its full child count.
        for (size_t l = 0; l + 1 < shape.order(); ++l) {
          ASSERT_EQ(t.ptr[l].size(), t.ids[l].size() + 1);
          EXPECT_EQ(t.ptr[l].back(), t.ids[l + 1].size());
        }
      }
    }
  }
}

// ---------------------------------------------------------- kernel parity

TEST(CsfKernelsTest, MttkrpMatchesCooAndDense) {
  for (const Shape& shape : ParityShapes()) {
    for (double density : kDensities) {
      for (size_t rank : kRanks) {
        Mask omega = RandomMask(shape, density, 11);
        CooList coo = CooList::Build(omega);
        CsfTensor csf = CsfTensor::Build(coo);
        std::vector<Matrix> factors = RandomFactors(shape, rank, 13);
        std::vector<double> values = RandomValues(coo.nnz(), 17);
        // Dense reference: scatter the values into a tensor.
        DenseTensor y(shape, 0.0);
        for (size_t k = 0; k < coo.nnz(); ++k) {
          y[coo.LinearIndex(k)] = values[k];
        }
        for (size_t mode = 0; mode < shape.order(); ++mode) {
          SCOPED_TRACE(::testing::Message()
                       << shape.ToString() << " density " << density
                       << " rank " << rank << " mode " << mode);
          Matrix coo_out = CooMttkrp(coo, values, factors, mode);
          Matrix csf_out = CsfMttkrp(csf, values, factors, mode);
          Matrix dense_out = MaskedMttkrp(y, omega, factors, mode);
          ASSERT_EQ(csf_out.rows(), coo_out.rows());
          for (size_t i = 0; i < csf_out.rows(); ++i) {
            for (size_t r = 0; r < rank; ++r) {
              EXPECT_NEAR(csf_out(i, r), coo_out(i, r), Tol(coo_out(i, r)));
              EXPECT_NEAR(csf_out(i, r), dense_out(i, r),
                          Tol(dense_out(i, r)));
            }
          }
        }
      }
    }
  }
}

TEST(CsfKernelsTest, RowSystemsMatchCooAndDense) {
  for (const Shape& shape : ParityShapes()) {
    for (double density : {0.05, 0.5}) {
      for (size_t rank : kRanks) {
        Mask omega = RandomMask(shape, density, 19);
        CooList coo = CooList::Build(omega);
        CsfTensor csf = CsfTensor::Build(coo);
        std::vector<Matrix> factors = RandomFactors(shape, rank, 23);
        std::vector<double> values = RandomValues(coo.nnz(), 29);
        DenseTensor y(shape, 0.0);
        for (size_t k = 0; k < coo.nnz(); ++k) {
          y[coo.LinearIndex(k)] = values[k];
        }
        const DenseTensor zeros(shape, 0.0);
        for (size_t mode = 0; mode < shape.order(); ++mode) {
          SCOPED_TRACE(::testing::Message()
                       << shape.ToString() << " density " << density
                       << " rank " << rank << " mode " << mode);
          RowSystems coo_sys = CooRowSystems(coo, values, factors, mode);
          RowSystems csf_sys = CsfRowSystems(csf, values, factors, mode);
          RowSystems dense_sys = DenseRowSystems(y, omega, zeros, factors,
                                                 mode);
          ASSERT_EQ(csf_sys.b.size(), coo_sys.b.size());
          for (size_t i = 0; i < csf_sys.b.size(); ++i) {
            for (size_t r = 0; r < rank; ++r) {
              EXPECT_NEAR(csf_sys.c[i][r], coo_sys.c[i][r],
                          Tol(coo_sys.c[i][r]));
              EXPECT_NEAR(csf_sys.c[i][r], dense_sys.c[i][r],
                          Tol(dense_sys.c[i][r]));
              for (size_t q = 0; q < rank; ++q) {
                EXPECT_NEAR(csf_sys.b[i](r, q), coo_sys.b[i](r, q),
                            Tol(coo_sys.b[i](r, q)));
                EXPECT_NEAR(csf_sys.b[i](r, q), dense_sys.b[i](r, q),
                            Tol(dense_sys.b[i](r, q)));
              }
            }
          }
        }
      }
    }
  }
}

TEST(CsfKernelsTest, WeightedRowSystemsAndProximalMatchCoo) {
  for (const Shape& shape : ParityShapes()) {
    for (size_t rank : kRanks) {
      Mask omega = RandomMask(shape, 0.3, 31);
      CooList coo = CooList::Build(omega);
      CsfTensor csf = CsfTensor::Build(coo);
      std::vector<Matrix> factors = RandomFactors(shape, rank, 37);
      std::vector<double> values = RandomValues(coo.nnz(), 41);
      std::vector<double> w = RandomValues(rank, 43);
      Rng rng(47);
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        SCOPED_TRACE(::testing::Message() << shape.ToString() << " rank "
                                          << rank << " mode " << mode);
        RowSystems coo_sys =
            CooWeightedRowSystems(coo, values, factors, w, mode);
        RowSystems csf_sys =
            CsfWeightedRowSystems(csf, values, factors, w, mode);
        for (size_t i = 0; i < csf_sys.b.size(); ++i) {
          for (size_t r = 0; r < rank; ++r) {
            EXPECT_NEAR(csf_sys.c[i][r], coo_sys.c[i][r],
                        Tol(coo_sys.c[i][r]));
            for (size_t q = 0; q < rank; ++q) {
              EXPECT_NEAR(csf_sys.b[i](r, q), coo_sys.b[i](r, q),
                          Tol(coo_sys.b[i](r, q)));
            }
          }
        }
        const Matrix previous =
            Matrix::Random(shape.dim(mode), rank, rng, -1.0, 1.0);
        Matrix u_coo = previous;
        Matrix u_csf = previous;
        CooProximalRowUpdates(coo, values, factors, w, mode, previous, 0.7,
                              &u_coo);
        CsfProximalRowUpdates(csf, values, factors, w, mode, previous, 0.7,
                              &u_csf);
        for (size_t i = 0; i < u_coo.rows(); ++i) {
          for (size_t r = 0; r < rank; ++r) {
            // Same ProximalRowSolve tail on ≤1e-12-close systems —
            // including rows with no observations (empty-system path,
            // which is exactly shared and so exactly equal).
            EXPECT_NEAR(u_csf(i, r), u_coo(i, r), Tol(u_coo(i, r)));
          }
        }
      }
    }
  }
}

TEST(CsfKernelsTest, GlobalKernelsMatchCoo) {
  for (const Shape& shape : ParityShapes()) {
    for (double density : kDensities) {
      for (size_t rank : kRanks) {
        SCOPED_TRACE(::testing::Message() << shape.ToString() << " density "
                                          << density << " rank " << rank);
        Mask omega = RandomMask(shape, density, 53);
        CooList coo = CooList::Build(omega);
        CsfTensor csf = CsfTensor::Build(coo);
        std::vector<Matrix> factors = RandomFactors(shape, rank, 59);
        std::vector<double> values = RandomValues(coo.nnz(), 61);
        std::vector<double> w = RandomValues(rank, 67);

        NormalSystem coo_sys = CooNormalSystem(coo, values, factors);
        NormalSystem csf_sys = CsfNormalSystem(csf, values, factors);
        for (size_t r = 0; r < rank; ++r) {
          EXPECT_NEAR(csf_sys.c[r], coo_sys.c[r], Tol(coo_sys.c[r]));
          for (size_t q = 0; q < rank; ++q) {
            EXPECT_NEAR(csf_sys.b(r, q), coo_sys.b(r, q),
                        Tol(coo_sys.b(r, q)));
          }
        }

        std::vector<double> coo_gather =
            CooKruskalGather(coo, factors, w);
        std::vector<double> csf_gather =
            CsfKruskalGather(csf, factors, w);
        ASSERT_EQ(csf_gather.size(), coo_gather.size());
        for (size_t k = 0; k < coo_gather.size(); ++k) {
          EXPECT_NEAR(csf_gather[k], coo_gather[k], Tol(coo_gather[k]));
        }
        // Dense reference for the gather.
        DenseTensor recon = KruskalSlice(factors, w);
        for (size_t k = 0; k < csf_gather.size(); ++k) {
          EXPECT_NEAR(csf_gather[k], recon[coo.LinearIndex(k)],
                      Tol(recon[coo.LinearIndex(k)]));
        }

        ModeGradients coo_g = CooModeGradients(coo, values, factors, w);
        ModeGradients csf_g = CsfModeGradients(csf, values, factors, w);
        StepGradients coo_s = CooStepGradients(coo, values, factors, w);
        StepGradients csf_s = CsfStepGradients(csf, values, factors, w);
        for (size_t n = 0; n < shape.order(); ++n) {
          for (size_t i = 0; i < factors[n].rows(); ++i) {
            EXPECT_NEAR(csf_g.row_trace[n][i], coo_g.row_trace[n][i],
                        Tol(coo_g.row_trace[n][i]));
            for (size_t r = 0; r < rank; ++r) {
              EXPECT_NEAR(csf_g.row_grads[n](i, r), coo_g.row_grads[n](i, r),
                          Tol(coo_g.row_grads[n](i, r)));
              EXPECT_NEAR(csf_s.row_grads[n](i, r), coo_s.row_grads[n](i, r),
                          Tol(coo_s.row_grads[n](i, r)));
            }
          }
        }
        for (size_t r = 0; r < rank; ++r) {
          EXPECT_NEAR(csf_s.temporal_grad[r], coo_s.temporal_grad[r],
                      Tol(coo_s.temporal_grad[r]));
        }
        EXPECT_NEAR(csf_s.temporal_trace, coo_s.temporal_trace,
                    Tol(coo_s.temporal_trace));
      }
    }
  }
}

TEST(CsfKernelsTest, BitwiseThreadDeterminism) {
  const Shape shape({7, 6, 5});
  Mask omega = RandomMask(shape, 0.3, 71);
  CooList coo = CooList::Build(omega);
  CsfTensor csf = CsfTensor::Build(coo);
  const size_t rank = 5;
  std::vector<Matrix> factors = RandomFactors(shape, rank, 73);
  std::vector<double> values = RandomValues(coo.nnz(), 79);
  std::vector<double> w = RandomValues(rank, 83);

  ThreadPool pool(3);
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix serial = CsfMttkrp(csf, values, factors, mode);
    Matrix threaded = CsfMttkrp(csf, values, factors, mode, 1, &pool);
    for (size_t i = 0; i < serial.rows(); ++i) {
      for (size_t r = 0; r < rank; ++r) {
        EXPECT_EQ(serial(i, r), threaded(i, r));
      }
    }
    RowSystems s1 = CsfWeightedRowSystems(csf, values, factors, w, mode);
    RowSystems s2 = CsfWeightedRowSystems(csf, values, factors, w, mode, 1,
                                          &pool);
    for (size_t i = 0; i < s1.b.size(); ++i) {
      EXPECT_EQ(s1.c[i], s2.c[i]);
    }
  }
  NormalSystem n1 = CsfNormalSystem(csf, values, factors);
  NormalSystem n2 = CsfNormalSystem(csf, values, factors, 1, &pool);
  EXPECT_EQ(n1.c, n2.c);
  EXPECT_EQ(CsfKruskalGather(csf, factors, w),
            CsfKruskalGather(csf, factors, w, 1, &pool));
  StepGradients g1 = CsfStepGradients(csf, values, factors, w);
  StepGradients g2 = CsfStepGradients(csf, values, factors, w, 1, &pool);
  EXPECT_EQ(g1.temporal_grad, g2.temporal_grad);
  EXPECT_EQ(g1.temporal_trace, g2.temporal_trace);
}

TEST(CsfKernelsTest, ObservedSweepCsfBackendMatchesCoo) {
  const Shape shape({6, 5, 4});
  Mask omega = RandomMask(shape, 0.2, 89);
  DenseTensor y(shape, 0.0);
  Rng rng(97);
  for (size_t k = 0; k < y.NumElements(); ++k) y[k] = rng.Uniform(-1.0, 1.0);
  const size_t rank = 3;
  std::vector<Matrix> factors = RandomFactors(shape, rank, 101);
  std::vector<double> w = RandomValues(rank, 103);

  ObservedSweepOptions coo_opts;
  ObservedSweepOptions csf_opts;
  csf_opts.pattern_storage = PatternStorage::kCsf;
  ObservedSweep coo_sweep(coo_opts);
  ObservedSweep csf_sweep(csf_opts);
  coo_sweep.BeginStep(y, omega);
  csf_sweep.BeginStep(y, omega);
  EXPECT_EQ(coo_sweep.csf(), nullptr);
  ASSERT_NE(csf_sweep.csf(), nullptr);

  const std::vector<double> recon_coo = coo_sweep.Reconstruct(factors, w);
  const std::vector<double> recon_csf = csf_sweep.Reconstruct(factors, w);
  ASSERT_EQ(recon_csf.size(), recon_coo.size());
  for (size_t k = 0; k < recon_coo.size(); ++k) {
    EXPECT_NEAR(recon_csf[k], recon_coo[k], Tol(recon_coo[k]));
  }
  const std::vector<double> ridge_coo =
      coo_sweep.SolveTemporalRow(factors, coo_sweep.values(), 1e-6);
  const std::vector<double> ridge_csf =
      csf_sweep.SolveTemporalRow(factors, csf_sweep.values(), 1e-6);
  for (size_t r = 0; r < rank; ++r) {
    EXPECT_NEAR(ridge_csf[r], ridge_coo[r], Tol(ridge_coo[r]));
  }
  // Mask reuse keeps the compiled trees: same pattern object, no rebuild.
  const CsfTensor* before = csf_sweep.csf();
  csf_sweep.BeginStep(y, omega);
  EXPECT_EQ(csf_sweep.csf(), before);
  EXPECT_EQ(csf_sweep.pattern_builds(), 1u);
  EXPECT_EQ(csf_sweep.pattern_reuses(), 1u);

  // A bucket-less shared pattern cannot compile fiber trees: the kCsf
  // sweep must fall back to the COO backend instead of aborting.
  ObservedSweep fallback(csf_opts);
  fallback.BeginStep(y, omega,
                     MakeSharedPattern(omega, /*with_mode_buckets=*/false));
  EXPECT_EQ(fallback.csf(), nullptr);
  EXPECT_EQ(fallback.Reconstruct(factors, w).size(), omega.CountObserved());
}

// ------------------------------------------- nine-method storage parity

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

/// All nine streaming methods of the comparison protocols, small configs
/// (mirrors tests/step_result_test.cc).
std::vector<std::unique_ptr<StreamingMethod>> MakeAllMethods() {
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  methods.push_back(std::make_unique<SofiaStream>(config));
  methods.push_back(std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}));
  methods.push_back(std::make_unique<Olstec>(OlstecOptions{.rank = 3}));
  methods.push_back(std::make_unique<Mast>(MastOptions{.rank = 3}));
  methods.push_back(std::make_unique<OrMstc>(
      OrMstcOptions{.rank = 3, .outlier_lambda = 2.0}));
  methods.push_back(std::make_unique<BrstLite>(BrstOptions{.rank = 4}));
  methods.push_back(std::make_unique<Smf>(SmfOptions{.rank = 3, .period = 4}));
  methods.push_back(std::make_unique<Cphw>(CphwOptions{.rank = 3,
                                                       .period = 4}));
  methods.push_back(std::make_unique<CpWoptStream>(
      CpWoptStreamOptions{.rank = 3, .iterations_per_step = 5}));
  return methods;
}

TEST(CsfPipelineTest, CsfStorageMatchesCooForAllNineMethods) {
  std::vector<DenseTensor> truth = MakeTruth(20, 91);
  CorruptedStream stream = Corrupt(truth, {40.0, 10.0, 2.0}, 92);
  // Edge steps: empty Ω, full Ω, and a mask-reuse run under csf storage.
  stream.masks[9] = Mask(truth[0].shape(), false);
  stream.masks[10] = Mask(truth[0].shape(), true);
  stream.masks[12] = stream.masks[11];
  stream.masks[13] = stream.masks[11];

  StreamEvalOptions coo_options;
  coo_options.max_eval_entries = 8;
  StreamEvalOptions csf_options = coo_options;
  csf_options.pattern_storage = PatternStorage::kCsf;

  std::vector<std::unique_ptr<StreamingMethod>> coo_owned = MakeAllMethods();
  std::vector<std::unique_ptr<StreamingMethod>> csf_owned = MakeAllMethods();
  std::vector<StreamingMethod*> coo_methods, csf_methods;
  for (auto& m : coo_owned) coo_methods.push_back(m.get());
  for (auto& m : csf_owned) csf_methods.push_back(m.get());
  ASSERT_EQ(coo_methods.size(), 9u);

  std::vector<MethodRunResult> coo =
      RunImputationComparison(coo_methods, stream, truth, coo_options);
  std::vector<MethodRunResult> csf =
      RunImputationComparison(csf_methods, stream, truth, csf_options);

  ASSERT_EQ(coo.size(), csf.size());
  for (size_t m = 0; m < coo.size(); ++m) {
    SCOPED_TRACE(coo[m].name);
    ASSERT_EQ(csf[m].run.nre.size(), truth.size());
    for (size_t t = 0; t < truth.size(); ++t) {
      EXPECT_NEAR(csf[m].run.nre[t], coo[m].run.nre[t],
                  Tol(coo[m].run.nre[t]))
          << "t=" << t;
      EXPECT_NEAR(csf[m].run.observed_nre[t], coo[m].run.observed_nre[t],
                  Tol(coo[m].run.observed_nre[t]))
          << "t=" << t;
      EXPECT_NEAR(csf[m].run.missing_nre[t], coo[m].run.missing_nre[t],
                  Tol(coo[m].run.missing_nre[t]))
          << "t=" << t;
    }
    EXPECT_NEAR(csf[m].run.rae, coo[m].run.rae, Tol(coo[m].run.rae));
  }
}

// ------------------------------------------------- steady-state counters

TEST(CsfPipelineTest, SteadyStateLoopPerformsNoVolumeScans) {
  // One fixed outage mask across the whole stream, csf storage: the loop
  // must compact exactly once, serve every later step from the SparseMask
  // cache, log no deltas, and never fall back to a dense mask byte
  // compare. SOFIA adopts the shared pattern without building.
  std::vector<DenseTensor> truth = MakeTruth(20, 31);
  CorruptedStream stream = Corrupt(truth, {50.0, 0.0, 0.0}, 32);
  for (size_t t = 1; t < stream.masks.size(); ++t) {
    stream.masks[t] = stream.masks[0];
  }

  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  SofiaStream sofia(config);
  OnlineSgd sgd(OnlineSgdOptions{.rank = 3});
  std::vector<StreamingMethod*> methods = {&sofia, &sgd};
  StreamEvalOptions options;
  options.pattern_storage = PatternStorage::kCsf;

  Mask::ResetDeepEqualityScans();
  std::vector<MethodRunResult> results =
      RunImputationComparison(methods, stream, truth, options);
  EXPECT_EQ(Mask::deep_equality_scans(), 0u)
      << "a steady-state step fell back to a dense mask byte compare";
  ASSERT_EQ(results.size(), 2u);
  for (const MethodRunResult& r : results) {
    EXPECT_EQ(r.run.pattern_builds, 1u);
    EXPECT_EQ(r.run.pattern_reuses, truth.size() - 1);
    EXPECT_TRUE(r.run.pattern_delta_sizes.empty());
  }
  EXPECT_EQ(sofia.model().step_pattern_builds(), 0u);
}

TEST(CsfPipelineTest, RebuildTelemetryLogsBitmapDeltas) {
  // Mask churn halfway through the stream: two builds, one logged delta of
  // exactly the masks' symmetric difference, everything else reuses.
  std::vector<DenseTensor> truth = MakeTruth(10, 41);
  CorruptedStream stream = Corrupt(truth, {30.0, 0.0, 0.0}, 42);
  const Mask mask_a = stream.masks[0];
  const Mask mask_b = stream.masks[5];
  for (size_t t = 0; t < 5; ++t) stream.masks[t] = mask_a;
  for (size_t t = 5; t < truth.size(); ++t) stream.masks[t] = mask_b;

  OnlineSgd sgd(OnlineSgdOptions{.rank = 3});
  std::vector<StreamingMethod*> methods = {&sgd};
  std::vector<MethodRunResult> results =
      RunImputationComparison(methods, stream, truth);

  const StreamRunResult& run = results[0].run;
  EXPECT_EQ(run.pattern_builds, 2u);
  EXPECT_EQ(run.pattern_reuses, truth.size() - 2);
  ASSERT_EQ(run.pattern_delta_sizes.size(), 1u);
  const size_t expected =
      SparseMask::FromMask(mask_a).DeltaSize(SparseMask::FromMask(mask_b));
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(run.pattern_delta_sizes[0], expected);
}

}  // namespace
}  // namespace sofia
