#include "tensor/kruskal.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(KruskalTest, Rank1IsOuterProduct) {
  Matrix u = Matrix::FromRows({{1}, {2}});
  Matrix v = Matrix::FromRows({{3}, {4}, {5}});
  DenseTensor x = KruskalTensor({u, v});
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(x.At({i, j}), u(i, 0) * v(j, 0));
    }
  }
}

TEST(KruskalTest, SumsOverRankComponents) {
  // Rank-2: [[U, V]] = u1 o v1 + u2 o v2.
  Matrix u = Matrix::FromRows({{1, 10}});
  Matrix v = Matrix::FromRows({{2, 3}});
  DenseTensor x = KruskalTensor({u, v});
  EXPECT_DOUBLE_EQ(x.At({0, 0}), 1.0 * 2.0 + 10.0 * 3.0);
}

TEST(KruskalTest, EntryMatchesFullTensor) {
  Rng rng(11);
  std::vector<Matrix> factors = {Matrix::RandomNormal(3, 2, rng),
                                 Matrix::RandomNormal(4, 2, rng),
                                 Matrix::RandomNormal(5, 2, rng)};
  DenseTensor x = KruskalTensor(factors);
  std::vector<size_t> idx(3, 0);
  for (size_t linear = 0; linear < x.NumElements(); ++linear) {
    EXPECT_NEAR(KruskalEntry(factors, idx), x[linear], 1e-12);
    x.shape().Next(&idx);
  }
}

TEST(KruskalTest, SliceMatchesFullTensorSlice) {
  Rng rng(13);
  Matrix a = Matrix::RandomNormal(3, 2, rng);
  Matrix b = Matrix::RandomNormal(4, 2, rng);
  Matrix t = Matrix::RandomNormal(5, 2, rng);
  DenseTensor full = KruskalTensor({a, b, t});
  for (size_t step = 0; step < 5; ++step) {
    DenseTensor slice = KruskalSlice({a, b}, t.RowVector(step));
    DenseTensor expected = full.SliceLastMode(step);
    DenseTensor diff = slice - expected;
    EXPECT_LT(diff.FrobeniusNorm(), 1e-12) << "step " << step;
  }
}

TEST(KruskalTest, SliceEntryMatchesSlice) {
  Rng rng(17);
  std::vector<Matrix> factors = {Matrix::RandomNormal(3, 4, rng),
                                 Matrix::RandomNormal(2, 4, rng)};
  std::vector<double> w = rng.NormalVector(4);
  DenseTensor slice = KruskalSlice(factors, w);
  std::vector<size_t> idx(2, 0);
  for (size_t linear = 0; linear < slice.NumElements(); ++linear) {
    EXPECT_NEAR(KruskalSliceEntry(factors, w, idx), slice[linear], 1e-12);
    slice.shape().Next(&idx);
  }
}

}  // namespace
}  // namespace sofia
