// StreamingMethod::SaveState / RestoreState across all nine methods:
//  - a checkpoint taken mid-stream and restored into a freshly constructed
//    method (same configuration) continues the stream bit-for-bit — the
//    contract StreamGuard's rollback policy is built on;
//  - re-serializing the restored state reproduces the checkpoint bytes
//    (bitwise-identical factors);
//  - StreamGuard's checkpoint ring wraps past its slot count, and a
//    rollback restores exactly the newest pre-fault state (pinned by
//    comparing against a twin that never saw the poisoned slice).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/cp_wopt_stream.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_guard.hpp"
#include "tensor/coo_list.hpp"
#include "util/state_io.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

/// All nine streaming methods, small configs (one factory call per
/// instance so paired instances share their configuration exactly).
std::vector<std::unique_ptr<StreamingMethod>> MakeAllMethods() {
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  methods.push_back(std::make_unique<SofiaStream>(config));
  methods.push_back(std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}));
  methods.push_back(std::make_unique<Olstec>(OlstecOptions{.rank = 3}));
  methods.push_back(std::make_unique<Mast>(MastOptions{.rank = 3}));
  methods.push_back(std::make_unique<OrMstc>(
      OrMstcOptions{.rank = 3, .outlier_lambda = 2.0}));
  methods.push_back(std::make_unique<BrstLite>(BrstOptions{.rank = 4}));
  methods.push_back(std::make_unique<Smf>(SmfOptions{.rank = 3, .period = 4}));
  methods.push_back(std::make_unique<Cphw>(CphwOptions{.rank = 3,
                                                       .period = 4}));
  methods.push_back(std::make_unique<CpWoptStream>(
      CpWoptStreamOptions{.rank = 3, .iterations_per_step = 5}));
  return methods;
}

/// Steps `method` over stream slices [from, to) and returns the estimates
/// gathered at every step's observed entries (the values rollback must
/// reproduce bit-for-bit).
std::vector<double> DriveAndGather(StreamingMethod* method,
                                   const CorruptedStream& stream, size_t from,
                                   size_t to) {
  std::vector<double> out;
  for (size_t t = from; t < to; ++t) {
    StepResult result = method->StepLazy(stream.slices[t], stream.masks[t]);
    CooList pattern =
        CooList::Build(stream.masks[t], /*with_mode_buckets=*/false);
    std::vector<double> gathered = result.GatherAt(pattern);
    out.insert(out.end(), gathered.begin(), gathered.end());
  }
  return out;
}

TEST(CheckpointTest, RoundTripContinuesBitwiseForAllNineMethods) {
  const size_t steps = 24;
  std::vector<DenseTensor> truth = MakeTruth(steps, 131);
  CorruptedStream stream = Corrupt(truth, {20.0, 5.0, 2.0}, 132);

  std::vector<std::unique_ptr<StreamingMethod>> originals = MakeAllMethods();
  std::vector<std::unique_ptr<StreamingMethod>> restored = MakeAllMethods();
  ASSERT_EQ(originals.size(), 9u);

  for (size_t m = 0; m < originals.size(); ++m) {
    StreamingMethod* a = originals[m].get();
    StreamingMethod* b = restored[m].get();
    SCOPED_TRACE(a->name());
    ASSERT_TRUE(a->SupportsStateCheckpoint());

    const size_t w = a->init_window();
    const size_t split = std::max<size_t>(w, 12) + 4;
    ASSERT_LT(split, steps);
    if (w > 0) {
      std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                           stream.slices.begin() + w);
      std::vector<Mask> init_masks(stream.masks.begin(),
                                   stream.masks.begin() + w);
      a->Initialize(init_slices, init_masks);
    }
    DriveAndGather(a, stream, w, split);

    std::ostringstream snapshot;
    a->SaveState(snapshot);

    // `b` is a fresh instance: no Initialize, no steps — the checkpoint is
    // its entire state.
    std::istringstream in(snapshot.str());
    b->RestoreState(in);

    // Bitwise-identical state: re-serializing reproduces the bytes.
    std::ostringstream again;
    b->SaveState(again);
    EXPECT_EQ(snapshot.str(), again.str());

    // Bit-for-bit continuation on the shared tail.
    std::vector<double> tail_a = DriveAndGather(a, stream, split, steps);
    std::vector<double> tail_b = DriveAndGather(b, stream, split, steps);
    ASSERT_EQ(tail_a.size(), tail_b.size());
    for (size_t k = 0; k < tail_a.size(); ++k) {
      ASSERT_EQ(tail_a[k], tail_b[k]) << "diverged at gathered value " << k;
    }
  }
}

TEST(CheckpointTest, RestoreRejectsWrongMethodTag) {
  // A recoverable error, not an abort: the durability layer catches
  // StateError to fall back to an older checkpoint generation.
  OnlineSgd sgd(OnlineSgdOptions{.rank = 3});
  std::ostringstream snapshot;
  sgd.SaveState(snapshot);
  Mast mast(MastOptions{.rank = 3});
  std::istringstream in(snapshot.str());
  EXPECT_THROW(mast.RestoreState(in), state_io::StateError);
}

TEST(CheckpointTest, RestoreSurvivesTruncationAndBitFlipFuzz) {
  // Corruption fuzz across all nine methods: every truncation and every
  // single-character mutation of a valid checkpoint must either restore
  // cleanly or throw StateError — never abort, crash, or allocate from a
  // poisoned size field. (ASan runs this same loop in CI.)
  const size_t steps = 20;
  std::vector<DenseTensor> truth = MakeTruth(steps, 171);
  CorruptedStream stream = Corrupt(truth, {20.0, 5.0, 2.0}, 172);

  std::vector<std::unique_ptr<StreamingMethod>> originals = MakeAllMethods();
  for (size_t m = 0; m < originals.size(); ++m) {
    StreamingMethod* a = originals[m].get();
    SCOPED_TRACE(a->name());
    const size_t w = a->init_window();
    if (w > 0) {
      std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                           stream.slices.begin() + w);
      std::vector<Mask> init_masks(stream.masks.begin(),
                                   stream.masks.begin() + w);
      a->Initialize(init_slices, init_masks);
    }
    DriveAndGather(a, stream, w, std::max<size_t>(w, 12) + 4);
    std::ostringstream snapshot;
    a->SaveState(snapshot);
    const std::string bytes = snapshot.str();
    ASSERT_FALSE(bytes.empty());

    const auto restore_must_not_crash = [&](const std::string& corrupt) {
      std::unique_ptr<StreamingMethod> fresh =
          std::move(MakeAllMethods()[m]);
      std::istringstream in(corrupt);
      try {
        fresh->RestoreState(in);
      } catch (const state_io::StateError&) {
        // Rejected cleanly — the expected outcome for most mutations.
      }
    };

    // Truncations (torn writes at rest).
    for (const double frac : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
      restore_must_not_crash(
          bytes.substr(0, static_cast<size_t>(frac * bytes.size())));
    }
    restore_must_not_crash(bytes.substr(0, bytes.size() - 1));

    // Single-character mutations (bit rot), spread across the buffer. '9'
    // inflates digits (stressing the allocation caps); '#' breaks parses.
    const size_t stride = std::max<size_t>(1, bytes.size() / 24);
    for (size_t pos = 0; pos < bytes.size(); pos += stride) {
      for (const char c : {'9', '#'}) {
        if (bytes[pos] == c) continue;
        std::string mutated = bytes;
        mutated[pos] = c;
        restore_must_not_crash(mutated);
      }
    }
  }
}

TEST(CheckpointTest, GuardRingWrapsAndRollbackRestoresNewestState) {
  const size_t steps = 12;
  std::vector<DenseTensor> truth = MakeTruth(steps, 141);
  CorruptedStream stream = Corrupt(truth, {20.0, 0.0, 0.0}, 142);

  StreamGuardOptions options;
  options.policy = GuardPolicy::kRollback;
  options.checkpoint_every = 1;  // Per-step saves: rollback loses nothing.
  options.checkpoint_slots = 2;  // Force wraparound well within the run.
  // Disable the payload-scale watch so the huge slice reaches the health
  // layer (this test pins the rollback path, not input validation).
  options.payload_explosion_factor = 0.0;
  StreamGuard guard(std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}),
                    options);
  // Twin that simply never receives the poisoned slice: after the guard's
  // rollback both must be in the same state bit-for-bit.
  OnlineSgd twin(OnlineSgdOptions{.rank = 3});

  const size_t fault_step = 8;
  for (size_t t = 0; t < fault_step; ++t) {
    guard.StepLazy(stream.slices[t], stream.masks[t]);
    twin.StepLazy(stream.slices[t], stream.masks[t]);
  }
  // More ring writes than slots: the ring wrapped.
  EXPECT_EQ(guard.telemetry().checkpoints_saved, fault_step);
  EXPECT_GT(guard.telemetry().checkpoints_saved, options.checkpoint_slots);

  // A hugely scaled payload passes input validation (finite) but trips the
  // health watch; rollback restores the newest checkpoint = the state after
  // step fault_step - 1, which is exactly the twin's state.
  DenseTensor poisoned = stream.slices[fault_step];
  for (size_t k = 0; k < poisoned.NumElements(); ++k) {
    poisoned[k] = (stream.max_abs + 1.0) * 1e9;
  }
  guard.StepLazy(poisoned, stream.masks[fault_step]);
  EXPECT_EQ(guard.telemetry().health_trips, 1u);
  EXPECT_EQ(guard.telemetry().rollbacks, 1u);

  std::vector<double> after_guard =
      DriveAndGather(&guard, stream, fault_step + 1, steps);
  std::vector<double> after_twin =
      DriveAndGather(&twin, stream, fault_step + 1, steps);
  ASSERT_EQ(after_guard.size(), after_twin.size());
  for (size_t k = 0; k < after_guard.size(); ++k) {
    ASSERT_EQ(after_guard[k], after_twin[k])
        << "rollback did not restore the pre-fault state (value " << k << ")";
  }
}

TEST(CheckpointTest, AsyncCheckpointsMatchSynchronousBitwise) {
  // When a guard adopts a ShardExecutor, SaveCheckpoint serializes on the
  // executor's aux lane, off the step path. The ring bytes, the rollback
  // behavior, and every later estimate must be bitwise identical to the
  // synchronous guard — async moves *when* the bytes are written, never
  // what they are (every inner-state mutation syncs the pending job first).
  const size_t steps = 14;
  std::vector<DenseTensor> truth = MakeTruth(steps, 151);
  CorruptedStream stream = Corrupt(truth, {20.0, 0.0, 0.0}, 152);

  StreamGuardOptions options;
  options.policy = GuardPolicy::kRollback;
  options.checkpoint_every = 1;
  options.checkpoint_slots = 2;
  options.payload_explosion_factor = 0.0;
  StreamGuard sync_guard(
      std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}), options);
  StreamGuard async_guard(
      std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}), options);
  auto executor = std::make_shared<ShardExecutor>(2);
  async_guard.AdoptWorkerPool(executor);

  const size_t fault_step = 8;
  std::vector<double> sync_pre =
      DriveAndGather(&sync_guard, stream, 0, fault_step);
  std::vector<double> async_pre =
      DriveAndGather(&async_guard, stream, 0, fault_step);
  ASSERT_EQ(sync_pre, async_pre);
  EXPECT_EQ(async_guard.telemetry().checkpoints_saved, fault_step);

  // SaveState must first land the in-flight aux serialization; the full
  // guard state (ring included) then matches the synchronous twin's bytes.
  std::ostringstream sync_state, async_state;
  sync_guard.SaveState(sync_state);
  async_guard.SaveState(async_state);
  EXPECT_EQ(sync_state.str(), async_state.str());

  // Rollback restores from an async-written ring slot: same recovery.
  DenseTensor poisoned = stream.slices[fault_step];
  for (size_t k = 0; k < poisoned.NumElements(); ++k) {
    poisoned[k] = (stream.max_abs + 1.0) * 1e9;
  }
  sync_guard.StepLazy(poisoned, stream.masks[fault_step]);
  async_guard.StepLazy(poisoned, stream.masks[fault_step]);
  EXPECT_EQ(async_guard.telemetry().rollbacks, 1u);
  std::vector<double> sync_post =
      DriveAndGather(&sync_guard, stream, fault_step + 1, steps);
  std::vector<double> async_post =
      DriveAndGather(&async_guard, stream, fault_step + 1, steps);
  ASSERT_EQ(sync_post.size(), async_post.size());
  for (size_t k = 0; k < sync_post.size(); ++k) {
    ASSERT_EQ(sync_post[k], async_post[k])
        << "async-checkpoint rollback diverged (value " << k << ")";
  }

  // Revoking the pool syncs and returns the guard to inline saves.
  async_guard.AdoptWorkerPool(nullptr);
  DriveAndGather(&async_guard, stream, steps - 1, steps);
}

}  // namespace
}  // namespace sofia
