#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"

namespace sofia {
namespace {

CorruptedStream MakeStream(double value, size_t steps, double missing) {
  std::vector<DenseTensor> truth(steps, DenseTensor(Shape({4, 4}), value));
  return Corrupt(truth, {missing, 0.0, 0.0}, 5);
}

TEST(ExperimentTest, ObservedRmsOfConstantStream) {
  CorruptedStream s = MakeStream(3.0, 10, 0.0);
  EXPECT_DOUBLE_EQ(ObservedRms(s), 3.0);
}

TEST(ExperimentTest, ObservedRmsIgnoresMissingEntries) {
  CorruptedStream s = MakeStream(3.0, 10, 50.0);
  // All observed entries are 3.0 regardless of how many were dropped.
  EXPECT_DOUBLE_EQ(ObservedRms(s), 3.0);
}

TEST(ExperimentTest, QuantileOfConstantStream) {
  CorruptedStream s = MakeStream(-2.0, 10, 0.0);
  EXPECT_DOUBLE_EQ(ObservedAbsQuantile(s, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(ObservedAbsQuantile(s, 0.75), 2.0);
}

TEST(ExperimentTest, QuantileIsRobustToOutlierMass) {
  // 20% outliers of enormous magnitude move the RMS but barely move q75.
  std::vector<DenseTensor> truth(20, DenseTensor(Shape({5, 5}), 1.0));
  CorruptedStream clean = Corrupt(truth, {0.0, 0.0, 0.0}, 7);
  CorruptedStream dirty = Corrupt(truth, {0.0, 20.0, 100.0}, 7);
  EXPECT_GT(ObservedRms(dirty), 5.0 * ObservedRms(clean));
  EXPECT_LT(ObservedAbsQuantile(dirty, 0.75),
            2.0 * ObservedAbsQuantile(clean, 0.75));
}

TEST(ExperimentTest, ConfigTakesRankAndPeriodFromDataset) {
  Dataset d;
  d.name = "toy";
  d.rank = 7;
  d.period = 13;
  d.slices.assign(5, DenseTensor(Shape({3, 3}), 2.0));
  CorruptedStream s = Corrupt(d.slices, {0.0, 0.0, 0.0}, 9);
  SofiaConfig config = MakeExperimentConfig(d, s);
  EXPECT_EQ(config.rank, 7u);
  EXPECT_EQ(config.period, 13u);
  EXPECT_NEAR(config.lambda3, 3.0 * 2.0, 1e-12);
}

TEST(ExperimentTest, EmptyStreamFallsBackToPaperLambda3) {
  Dataset d;
  d.rank = 2;
  d.period = 4;
  CorruptedStream empty;
  SofiaConfig config = MakeExperimentConfig(d, empty);
  EXPECT_DOUBLE_EQ(config.lambda3, 10.0);
}

}  // namespace
}  // namespace sofia
