// Vectorized-vs-scalar kernel parity: the simd::Select trampoline compiles
// every hot Coo/Csf kernel body twice (default ISA and AVX2+FMA); this
// binary pins the contract between the two instantiations:
//  - every vectorized kernel agrees with its scalar twin to ≤1e-12
//    (relative) across shapes, densities, and ranks — including rank 16
//    (the widest compile-time dispatch) and a dynamic-rank fallback;
//  - the vectorized path stays bitwise identical across thread counts
//    (the ISA choice is hoisted per kernel call, so the owner-per-unit /
//    blocked-reduction determinism argument is ISA-independent);
//  - the deliberately scalar-pinned kernels (CooNormalSystem,
//    CooKruskalSliceGather, the residual norms) produce bitwise identical
//    results whether simd is enabled or not — they must never route
//    through the AVX2 instantiation;
//  - toggling simd::SetEnabled round-trips and is a no-op on hardware
//    without AVX2+FMA.
// On hosts without AVX2+FMA the parity tests skip (both paths are the same
// scalar code) and only the knob semantics are checked.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/shape.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

/// Restores the process-wide simd knob on scope exit so test order never
/// leaks one case's ISA choice into the next.
struct SimdGuard {
  bool prev = simd::Enabled();
  ~SimdGuard() { simd::SetEnabled(prev); }
};

Mask RandomMask(const Shape& shape, double density, uint64_t seed) {
  Rng rng(seed);
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

std::vector<Matrix> RandomFactors(const Shape& shape, size_t rank,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::Random(shape.dim(n), rank, rng, -1.0, 1.0));
  }
  return factors;
}

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  return v;
}

double Tol(double reference) { return 1e-12 * (1.0 + std::abs(reference)); }

void ExpectMatrixNear(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), Tol(a(i, j)))
          << what << " (" << i << "," << j << ")";
    }
  }
}

void ExpectVectorNear(const std::vector<double>& a,
                      const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], Tol(a[k])) << what << " [" << k << "]";
  }
}

void ExpectRowSystemsNear(const RowSystems& a, const RowSystems& b,
                          const char* what) {
  ASSERT_EQ(a.b.size(), b.b.size()) << what;
  for (size_t i = 0; i < a.b.size(); ++i) {
    ExpectMatrixNear(a.b[i], b.b[i], what);
    ExpectVectorNear(a.c[i], b.c[i], what);
  }
}

void ExpectStepGradientsNear(const StepGradients& a, const StepGradients& b,
                             const char* what) {
  ASSERT_EQ(a.row_grads.size(), b.row_grads.size()) << what;
  for (size_t n = 0; n < a.row_grads.size(); ++n) {
    ExpectMatrixNear(a.row_grads[n], b.row_grads[n], what);
    ExpectVectorNear(a.row_trace[n], b.row_trace[n], what);
  }
  ExpectVectorNear(a.temporal_grad, b.temporal_grad, what);
  EXPECT_NEAR(a.temporal_trace, b.temporal_trace, Tol(a.temporal_trace))
      << what;
}

/// One randomized problem instance: pattern, factors, record-aligned
/// values, and a temporal row.
struct Problem {
  CooList coo;
  CsfTensor csf;
  std::vector<Matrix> factors;
  std::vector<double> values;
  std::vector<double> temporal_row;
};

Problem MakeProblem(const Shape& shape, size_t rank, uint64_t seed) {
  Problem p;
  p.coo = CooList::Build(RandomMask(shape, 0.4, seed));
  p.csf = CsfTensor::Build(p.coo);
  p.factors = RandomFactors(shape, rank, seed + 1);
  p.values = RandomValues(p.coo.nnz(), seed + 2);
  p.temporal_row = RandomValues(rank, seed + 3);
  return p;
}

/// Ranks covering the compile-time dispatch table's edges (1, 16), a small
/// blocked rank (3), and a dynamic-dispatch fallback (7 is not in the
/// table).
constexpr size_t kRanks[] = {1, 3, 7, 16};

std::vector<Shape> ParityShapes() {
  return {Shape({7, 6, 5}), Shape({5, 4, 3, 6})};
}

// ------------------------------------------------- vector vs scalar parity

class SimdParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::Available()) {
      GTEST_SKIP() << "no AVX2+FMA on this host; both paths are scalar";
    }
  }
  SimdGuard guard_;
};

TEST_F(SimdParityTest, MttkrpMatchesScalar) {
  for (const Shape& shape : ParityShapes()) {
    for (size_t rank : kRanks) {
      Problem p = MakeProblem(shape, rank, 100 + rank);
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        simd::SetEnabled(false);
        Matrix coo_s = CooMttkrp(p.coo, p.values, p.factors, mode);
        Matrix csf_s = CsfMttkrp(p.csf, p.values, p.factors, mode);
        simd::SetEnabled(true);
        Matrix coo_v = CooMttkrp(p.coo, p.values, p.factors, mode);
        Matrix csf_v = CsfMttkrp(p.csf, p.values, p.factors, mode);
        ExpectMatrixNear(coo_s, coo_v, "CooMttkrp");
        ExpectMatrixNear(csf_s, csf_v, "CsfMttkrp");
      }
    }
  }
}

TEST_F(SimdParityTest, RowSystemsMatchScalar) {
  for (const Shape& shape : ParityShapes()) {
    for (size_t rank : kRanks) {
      Problem p = MakeProblem(shape, rank, 200 + rank);
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        simd::SetEnabled(false);
        RowSystems coo_s = CooRowSystems(p.coo, p.values, p.factors, mode);
        RowSystems csf_s = CsfRowSystems(p.csf, p.values, p.factors, mode);
        RowSystems wcoo_s = CooWeightedRowSystems(p.coo, p.values, p.factors,
                                                  p.temporal_row, mode);
        RowSystems wcsf_s = CsfWeightedRowSystems(p.csf, p.values, p.factors,
                                                  p.temporal_row, mode);
        simd::SetEnabled(true);
        RowSystems coo_v = CooRowSystems(p.coo, p.values, p.factors, mode);
        RowSystems csf_v = CsfRowSystems(p.csf, p.values, p.factors, mode);
        RowSystems wcoo_v = CooWeightedRowSystems(p.coo, p.values, p.factors,
                                                  p.temporal_row, mode);
        RowSystems wcsf_v = CsfWeightedRowSystems(p.csf, p.values, p.factors,
                                                  p.temporal_row, mode);
        ExpectRowSystemsNear(coo_s, coo_v, "CooRowSystems");
        ExpectRowSystemsNear(csf_s, csf_v, "CsfRowSystems");
        ExpectRowSystemsNear(wcoo_s, wcoo_v, "CooWeightedRowSystems");
        ExpectRowSystemsNear(wcsf_s, wcsf_v, "CsfWeightedRowSystems");
      }
    }
  }
}

TEST_F(SimdParityTest, ProximalRowUpdatesMatchScalar) {
  for (const Shape& shape : ParityShapes()) {
    for (size_t rank : kRanks) {
      Problem p = MakeProblem(shape, rank, 300 + rank);
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        Rng rng(17 + mode);
        Matrix previous =
            Matrix::Random(shape.dim(mode), rank, rng, -1.0, 1.0);
        Matrix u_s = p.factors[mode];
        Matrix u_v = p.factors[mode];
        simd::SetEnabled(false);
        CooProximalRowUpdates(p.coo, p.values, p.factors, p.temporal_row,
                              mode, previous, 0.3, &u_s);
        simd::SetEnabled(true);
        CooProximalRowUpdates(p.coo, p.values, p.factors, p.temporal_row,
                              mode, previous, 0.3, &u_v);
        ExpectMatrixNear(u_s, u_v, "CooProximalRowUpdates");
        u_s = p.factors[mode];
        u_v = p.factors[mode];
        simd::SetEnabled(false);
        CsfProximalRowUpdates(p.csf, p.values, p.factors, p.temporal_row,
                              mode, previous, 0.3, &u_s);
        simd::SetEnabled(true);
        CsfProximalRowUpdates(p.csf, p.values, p.factors, p.temporal_row,
                              mode, previous, 0.3, &u_v);
        ExpectMatrixNear(u_s, u_v, "CsfProximalRowUpdates");
      }
    }
  }
}

TEST_F(SimdParityTest, GradientsAndGathersMatchScalar) {
  for (const Shape& shape : ParityShapes()) {
    for (size_t rank : kRanks) {
      Problem p = MakeProblem(shape, rank, 400 + rank);
      simd::SetEnabled(false);
      ModeGradients mg_coo_s =
          CooModeGradients(p.coo, p.values, p.factors, p.temporal_row);
      ModeGradients mg_csf_s =
          CsfModeGradients(p.csf, p.values, p.factors, p.temporal_row);
      StepGradients sg_coo_s =
          CooStepGradients(p.coo, p.values, p.factors, p.temporal_row);
      StepGradients sg_csf_s =
          CsfStepGradients(p.csf, p.values, p.factors, p.temporal_row);
      std::vector<double> g_coo_s =
          CooKruskalGather(p.coo, p.factors, p.temporal_row);
      std::vector<double> g_csf_s =
          CsfKruskalGather(p.csf, p.factors, p.temporal_row);
      simd::SetEnabled(true);
      ModeGradients mg_coo_v =
          CooModeGradients(p.coo, p.values, p.factors, p.temporal_row);
      ModeGradients mg_csf_v =
          CsfModeGradients(p.csf, p.values, p.factors, p.temporal_row);
      StepGradients sg_coo_v =
          CooStepGradients(p.coo, p.values, p.factors, p.temporal_row);
      StepGradients sg_csf_v =
          CsfStepGradients(p.csf, p.values, p.factors, p.temporal_row);
      std::vector<double> g_coo_v =
          CooKruskalGather(p.coo, p.factors, p.temporal_row);
      std::vector<double> g_csf_v =
          CsfKruskalGather(p.csf, p.factors, p.temporal_row);
      for (size_t n = 0; n < shape.order(); ++n) {
        ExpectMatrixNear(mg_coo_s.row_grads[n], mg_coo_v.row_grads[n],
                         "CooModeGradients");
        ExpectMatrixNear(mg_csf_s.row_grads[n], mg_csf_v.row_grads[n],
                         "CsfModeGradients");
      }
      ExpectStepGradientsNear(sg_coo_s, sg_coo_v, "CooStepGradients");
      ExpectStepGradientsNear(sg_csf_s, sg_csf_v, "CsfStepGradients");
      ExpectVectorNear(g_coo_s, g_coo_v, "CooKruskalGather");
      ExpectVectorNear(g_csf_s, g_csf_v, "CsfKruskalGather");
    }
  }
}

// -------------------------------------------- determinism on the simd path

TEST_F(SimdParityTest, VectorizedPathIsBitwiseThreadDeterministic) {
  simd::SetEnabled(true);
  for (size_t rank : {size_t{3}, size_t{16}}) {
    Problem p = MakeProblem(Shape({7, 6, 5}), rank, 500 + rank);
    for (size_t mode = 0; mode < 3; ++mode) {
      Matrix m1 = CooMttkrp(p.coo, p.values, p.factors, mode, 1);
      Matrix m4 = CooMttkrp(p.coo, p.values, p.factors, mode, 4);
      EXPECT_EQ(m1.MaxAbsDiff(m4), 0.0) << "CooMttkrp mode=" << mode;
      Matrix c1 = CsfMttkrp(p.csf, p.values, p.factors, mode, 1);
      Matrix c4 = CsfMttkrp(p.csf, p.values, p.factors, mode, 4);
      EXPECT_EQ(c1.MaxAbsDiff(c4), 0.0) << "CsfMttkrp mode=" << mode;
    }
    StepGradients s1 =
        CooStepGradients(p.coo, p.values, p.factors, p.temporal_row, 1);
    StepGradients s4 =
        CooStepGradients(p.coo, p.values, p.factors, p.temporal_row, 4);
    StepGradients cs1 =
        CsfStepGradients(p.csf, p.values, p.factors, p.temporal_row, 1);
    StepGradients cs4 =
        CsfStepGradients(p.csf, p.values, p.factors, p.temporal_row, 4);
    for (size_t n = 0; n < 3; ++n) {
      EXPECT_EQ(s1.row_grads[n].MaxAbsDiff(s4.row_grads[n]), 0.0);
      EXPECT_EQ(cs1.row_grads[n].MaxAbsDiff(cs4.row_grads[n]), 0.0);
    }
    for (size_t r = 0; r < rank; ++r) {
      EXPECT_EQ(s1.temporal_grad[r], s4.temporal_grad[r]);
      EXPECT_EQ(cs1.temporal_grad[r], cs4.temporal_grad[r]);
    }
    EXPECT_EQ(s1.temporal_trace, s4.temporal_trace);
    EXPECT_EQ(cs1.temporal_trace, cs4.temporal_trace);
  }
}

// ------------------------------------------------- scalar-pinned kernels

TEST(SimdPinnedKernelsTest, ScalarPinnedKernelsIgnoreTheSimdKnob) {
  // CooNormalSystem (bitwise vs SolveTemporalRow), CooKruskalSliceGather
  // (bitwise vs the dense KruskalSlice chain), and the residual norms stay
  // scalar by design: their outputs must be bit-identical whether the simd
  // knob is on or off.
  SimdGuard guard;
  Problem p = MakeProblem(Shape({6, 5, 4}), 5, 900);
  simd::SetEnabled(false);
  NormalSystem ns_off = CooNormalSystem(p.coo, p.values, p.factors);
  std::vector<double> sg_off =
      CooKruskalSliceGather(p.coo, p.factors, p.temporal_row);
  double rn_off = CooResidualNorm(p.coo, p.values, p.factors);
  simd::SetEnabled(true);  // No-op off-AVX2 hosts; pin still holds.
  NormalSystem ns_on = CooNormalSystem(p.coo, p.values, p.factors);
  std::vector<double> sg_on =
      CooKruskalSliceGather(p.coo, p.factors, p.temporal_row);
  double rn_on = CooResidualNorm(p.coo, p.values, p.factors);
  EXPECT_EQ(ns_off.b.MaxAbsDiff(ns_on.b), 0.0);
  ASSERT_EQ(ns_off.c.size(), ns_on.c.size());
  for (size_t r = 0; r < ns_off.c.size(); ++r) {
    EXPECT_EQ(ns_off.c[r], ns_on.c[r]);
  }
  ASSERT_EQ(sg_off.size(), sg_on.size());
  for (size_t k = 0; k < sg_off.size(); ++k) {
    EXPECT_EQ(sg_off[k], sg_on[k]);
  }
  EXPECT_EQ(rn_off, rn_on);
}

// ---------------------------------------------------------- knob semantics

TEST(SimdKnobTest, SetEnabledRoundTripsAndRespectsAvailability) {
  SimdGuard guard;
  simd::SetEnabled(true);
  // Enabling only sticks when the hardware supports the ISA.
  EXPECT_EQ(simd::Enabled(), simd::Available());
  simd::SetEnabled(false);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_STREQ(simd::IsaName(), "scalar");
  if (simd::Available()) {
    simd::SetEnabled(true);
    EXPECT_TRUE(simd::Enabled());
    EXPECT_STREQ(simd::IsaName(), "avx2+fma");
  }
}

}  // namespace
}  // namespace sofia
