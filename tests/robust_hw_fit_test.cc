#include "timeseries/robust_hw_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/robust.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<double> CleanSeries(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t t = 0; t < n; ++t) {
    y[t] = 5.0 + 0.03 * static_cast<double>(t) +
           2.0 * std::sin(kTwoPi * static_cast<double>(t % m) /
                          static_cast<double>(m)) +
           rng.Normal(0.0, 0.1);
  }
  return y;
}

/// Injects spikes of ±`magnitude` into `frac` of the points after the
/// first two seasons (the initialization window stays clean, mirroring the
/// robust-HW literature's setup).
std::vector<double> Contaminate(std::vector<double> y, size_t m, double frac,
                                double magnitude, uint64_t seed) {
  Rng rng(seed);
  for (size_t t = 2 * m; t < y.size(); ++t) {
    if (rng.Bernoulli(frac)) {
      y[t] += rng.Bernoulli(0.5) ? magnitude : -magnitude;
    }
  }
  return y;
}

TEST(RobustHwFitTest, MatchesPlainFitOnCleanData) {
  const size_t m = 8;
  std::vector<double> y = CleanSeries(12 * m, m, 11);
  RobustHwFit robust = FitRobustHoltWinters(y, m);
  HwFit plain = FitHoltWinters(y, m);
  HoltWinters hw_r = ModelFromRobustFit(robust, m);
  HoltWinters hw_p = ModelFromFit(plain, m);
  // On clean data the two fits forecast nearly identically.
  for (size_t h = 1; h <= m; ++h) {
    EXPECT_NEAR(hw_r.Forecast(h), hw_p.Forecast(h), 0.35) << "h=" << h;
  }
}

TEST(RobustHwFitTest, ShruggedOffSpikes) {
  const size_t m = 8;
  std::vector<double> clean = CleanSeries(14 * m, m, 13);
  std::vector<double> dirty = Contaminate(clean, m, 0.1, 30.0, 14);

  RobustHwFit robust = FitRobustHoltWinters(dirty, m);
  HwFit plain = FitHoltWinters(dirty, m);
  HoltWinters hw_r = ModelFromRobustFit(robust, m);
  HoltWinters hw_p = ModelFromFit(plain, m);

  // Forecast against the clean generating process: the robust fit must be
  // markedly closer.
  double err_r = 0.0, err_p = 0.0;
  for (size_t h = 1; h <= m; ++h) {
    const size_t t = dirty.size() + h - 1;
    const double truth = 5.0 + 0.03 * static_cast<double>(t) +
                         2.0 * std::sin(kTwoPi * static_cast<double>(t % m) /
                                        static_cast<double>(m));
    err_r += std::fabs(hw_r.Forecast(h) - truth);
    err_p += std::fabs(hw_p.Forecast(h) - truth);
  }
  EXPECT_LT(err_r, err_p);
  EXPECT_LT(err_r / static_cast<double>(m), 1.0);
}

TEST(RobustHwFitTest, CleanedSeriesBoundsSpikes) {
  const size_t m = 6;
  std::vector<double> dirty =
      Contaminate(CleanSeries(12 * m, m, 15), m, 0.15, 50.0, 16);
  RobustHwFit fit = FitRobustHoltWinters(dirty, m);
  ASSERT_EQ(fit.cleaned_series.size(), dirty.size());
  // Every cleaned value is far closer to the seasonal band than the spikes.
  for (size_t t = 2 * m; t < dirty.size(); ++t) {
    EXPECT_LT(std::fabs(fit.cleaned_series[t]), 30.0) << "t=" << t;
  }
}

TEST(RobustHwFitTest, RobustLossIsBounded) {
  const size_t m = 6;
  std::vector<double> y = CleanSeries(10 * m, m, 17);
  // The biweight loss is capped at ck per observation, so even absurd
  // parameters give a loss bounded by ck * n.
  const double loss =
      RobustHwLoss(y, m, HwParams{1.0, 1.0, 1.0});
  EXPECT_LE(loss, kBiweightCk * static_cast<double>(y.size()) + 1e-9);
}

}  // namespace
}  // namespace sofia
