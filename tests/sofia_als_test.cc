#include "core/sofia_als.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

// The convergence thresholds below (e.g. the stationarity sweep's 3e-3
// gradient bound) were calibrated on the scalar kernels; the vectorized
// instantiations land a hair outside on some sweep points, so this binary
// pins the scalar path. Vectorized parity is covered in tests/simd_test.cc.
const bool kForceScalarKernels = [] {
  simd::SetEnabled(false);
  return true;
}();

TEST(SoftThresholdTest, MatchesEquationTwelve) {
  EXPECT_DOUBLE_EQ(SoftThreshold(5.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-5.0, 2.0), -3.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(2.0, 2.0), 0.0);
}

/// Builds a small corrupted test problem with a seasonal temporal factor.
struct Problem {
  DenseTensor y;
  Mask omega;
  DenseTensor outliers;  // All-zero outlier estimate.
  SofiaConfig config;
  std::vector<Matrix> factors;
  DenseTensor truth;
};

Problem MakeProblem(size_t duration, size_t period, double observed_frac,
                    uint64_t seed) {
  Problem p;
  SyntheticTensor syn = MakeSinusoidTensor(4, 3, duration, 2, period, seed);
  p.truth = syn.tensor;
  p.y = syn.tensor;
  p.omega = Mask(p.y.shape(), true);
  Rng rng(seed + 1);
  for (size_t k = 0; k < p.y.NumElements(); ++k) {
    if (!rng.Bernoulli(observed_frac)) p.omega.Set(k, false);
  }
  p.outliers = DenseTensor(p.y.shape(), 0.0);
  p.config.rank = 2;
  p.config.period = period;
  p.config.lambda1 = 1e-2;
  p.config.lambda2 = 1e-2;
  p.config.seed = seed;
  // These tests verify the verbatim Theorem 1/2 updates; the CP-degeneracy
  // ridge (a documented deviation) is exercised by its own tests instead.
  p.config.factor_ridge = 0.0;
  p.factors.clear();
  Rng frng(seed + 2);
  for (size_t n = 0; n < p.y.order(); ++n) {
    p.factors.push_back(Matrix::Random(p.y.dim(n), 2, frng, 0.0, 1.0));
  }
  return p;
}

/// Numerical gradient of the objective (10) w.r.t. one factor entry.
double NumericObjectiveGradient(const Problem& p,
                                const std::vector<Matrix>& factors, size_t n,
                                size_t i, size_t r) {
  std::vector<Matrix> probe = factors;
  const double h = 1e-5;
  probe[n](i, r) = factors[n](i, r) + h;
  const double fp = SofiaObjective(p.y, p.omega, p.outliers, p.config, probe);
  probe[n](i, r) = factors[n](i, r) - h;
  const double fm = SofiaObjective(p.y, p.omega, p.outliers, p.config, probe);
  return (fp - fm) / (2.0 * h);
}

// Theorem 2 check: the temporal factor is updated *last* in every sweep and
// carries no norm constraint, so after the solver settles, the gradient of
// objective (10) w.r.t. every temporal entry must vanish. (Non-temporal
// factors satisfy *constrained* stationarity — unit-norm columns per
// Algorithm 2 lines 7-9 — so their raw gradients carry a Lagrange radial
// component and are checked via the recovery tests instead.) With duration 9
// and period 3 every branch of the Eq. (17) piecewise rule is exercised
// (rows 0, 1..2, 3..5, 6..7, 8).
TEST(SofiaAlsTest, TemporalFactorIsStationaryAtFixedPoint) {
  Problem p = MakeProblem(/*duration=*/9, /*period=*/3,
                          /*observed_frac=*/0.8, /*seed=*/5);
  p.config.tolerance = 1e-13;
  p.config.max_als_iterations = 4000;
  SofiaAls(p.y, p.omega, p.outliers, p.config, &p.factors);

  // One extra temporal-only refinement at the exact current non-temporal
  // factors: run a single sweep and check its own stationarity (the sweep
  // also touches the non-temporal factors first, whose change is tiny).
  const double scale =
      1.0 + SofiaObjective(p.y, p.omega, p.outliers, p.config, p.factors);
  const size_t temporal = p.factors.size() - 1;
  for (size_t i = 0; i < p.factors[temporal].rows(); ++i) {
    for (size_t r = 0; r < p.factors[temporal].cols(); ++r) {
      const double grad =
          NumericObjectiveGradient(p, p.factors, temporal, i, r);
      EXPECT_LT(std::fabs(grad) / scale, 2e-3)
          << "temporal row " << i << " col " << r;
    }
  }
}

// Parameterized over (duration, period): each combination activates a
// different subset of Eq. (17)'s boundary branches — short streams where
// the ±m neighbours never exist, streams shorter than 2m, and long ones
// where all five branches fire.
class TemporalStationaritySweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(TemporalStationaritySweep, TemporalGradientVanishes) {
  const auto& [duration, period] = GetParam();
  Problem p = MakeProblem(duration, period, /*observed_frac=*/0.85,
                          /*seed=*/static_cast<uint64_t>(duration * 31 +
                                                         period));
  p.config.tolerance = 1e-13;
  p.config.max_als_iterations = 4000;
  SofiaAls(p.y, p.omega, p.outliers, p.config, &p.factors);
  const double scale =
      1.0 + SofiaObjective(p.y, p.omega, p.outliers, p.config, p.factors);
  const size_t temporal = p.factors.size() - 1;
  for (size_t i = 0; i < p.factors[temporal].rows(); ++i) {
    for (size_t r = 0; r < p.factors[temporal].cols(); ++r) {
      const double grad =
          NumericObjectiveGradient(p, p.factors, temporal, i, r);
      EXPECT_LT(std::fabs(grad) / scale, 3e-3) << "row " << i << " col " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DurationsAndPeriods, TemporalStationaritySweep,
    ::testing::Values(std::make_pair<size_t, size_t>(5, 3),    // IN < 2m
                      std::make_pair<size_t, size_t>(6, 3),    // IN = 2m
                      std::make_pair<size_t, size_t>(9, 3),    // all branches
                      std::make_pair<size_t, size_t>(8, 4),    // IN = 2m
                      std::make_pair<size_t, size_t>(12, 4),   // all branches
                      std::make_pair<size_t, size_t>(10, 2)));  // small m

TEST(SofiaAlsTest, ObjectiveNeverIncreasesAcrossSweeps) {
  Problem p = MakeProblem(/*duration=*/12, /*period=*/4,
                          /*observed_frac=*/0.7, /*seed=*/9);
  p.config.max_als_iterations = 1;  // One sweep per call.
  p.config.tolerance = 0.0;
  double prev =
      SofiaObjective(p.y, p.omega, p.outliers, p.config, p.factors);
  for (int sweep = 0; sweep < 15; ++sweep) {
    SofiaAls(p.y, p.omega, p.outliers, p.config, &p.factors);
    const double obj =
        SofiaObjective(p.y, p.omega, p.outliers, p.config, p.factors);
    EXPECT_LE(obj, prev + 1e-9 * (1.0 + std::fabs(prev)))
        << "sweep " << sweep;
    prev = obj;
  }
}

/// Replaces the random start with a mildly perturbed ground truth: random
/// starts can fall into the classic ALS "swamps" (very slow progress), which
/// would test luck, not the solver's correctness.
void PerturbFromTruth(Problem* p, double noise, uint64_t seed) {
  SyntheticTensor syn =
      MakeSinusoidTensor(4, 3, p->y.dim(2), 2, p->config.period, seed);
  Rng rng(seed + 100);
  p->factors.clear();
  for (size_t n = 0; n < p->y.order(); ++n) {
    Matrix f = syn.factors[n];
    for (size_t i = 0; i < f.rows(); ++i) {
      for (size_t r = 0; r < f.cols(); ++r) f(i, r) += rng.Normal(0, noise);
    }
    p->factors.push_back(std::move(f));
  }
}

TEST(SofiaAlsTest, RecoversFullyObservedLowRankTensor) {
  Problem p = MakeProblem(/*duration=*/15, /*period=*/5,
                          /*observed_frac=*/1.0, /*seed=*/3);
  p.config.lambda1 = 1e-6;  // Near-exact fit is possible; barely regularize.
  p.config.lambda2 = 1e-6;
  p.config.tolerance = 1e-9;
  p.config.max_als_iterations = 2000;
  PerturbFromTruth(&p, /*noise=*/0.2, /*seed=*/3);
  SofiaAlsResult res = SofiaAls(p.y, p.omega, p.outliers, p.config,
                                &p.factors);
  EXPECT_GT(res.fitness, 0.999);
  EXPECT_LT(NormalizedResidualError(res.completed, p.truth), 1e-2);
}

TEST(SofiaAlsTest, CompletesMissingEntries) {
  Problem p = MakeProblem(/*duration=*/18, /*period=*/6,
                          /*observed_frac=*/0.6, /*seed=*/7);
  p.config.tolerance = 1e-9;
  p.config.max_als_iterations = 2000;
  PerturbFromTruth(&p, /*noise=*/0.3, /*seed=*/7);
  SofiaAlsResult res = SofiaAls(p.y, p.omega, p.outliers, p.config,
                                &p.factors);
  // Error measured over ALL entries, including the 40% never seen.
  EXPECT_LT(NormalizedResidualError(res.completed, p.truth), 0.1);
}

TEST(SofiaAlsTest, NonTemporalColumnsAreNormalized) {
  Problem p = MakeProblem(/*duration=*/12, /*period=*/4,
                          /*observed_frac=*/0.9, /*seed=*/11);
  SofiaAls(p.y, p.omega, p.outliers, p.config, &p.factors);
  for (size_t n = 0; n + 1 < p.factors.size(); ++n) {
    for (size_t r = 0; r < p.factors[n].cols(); ++r) {
      EXPECT_NEAR(p.factors[n].ColNorm(r), 1.0, 1e-9)
          << "mode " << n << " col " << r;
    }
  }
}

TEST(SofiaAlsTest, SmoothnessPenaltyShrinksTemporalRoughness) {
  // With huge λ1, consecutive temporal rows are pulled together.
  Problem smooth = MakeProblem(12, 4, 0.9, 13);
  Problem rough = MakeProblem(12, 4, 0.9, 13);
  smooth.config.lambda1 = 1e3;
  rough.config.lambda1 = 0.0;
  rough.config.lambda2 = 0.0;
  SofiaAls(smooth.y, smooth.omega, smooth.outliers, smooth.config,
           &smooth.factors);
  SofiaAls(rough.y, rough.omega, rough.outliers, rough.config,
           &rough.factors);
  auto roughness = [](const Matrix& ut) {
    double s = 0.0;
    for (size_t i = 0; i + 1 < ut.rows(); ++i) {
      for (size_t r = 0; r < ut.cols(); ++r) {
        const double d = ut(i, r) - ut(i + 1, r);
        s += d * d;
      }
    }
    return s;
  };
  EXPECT_LT(roughness(smooth.factors.back()),
            roughness(rough.factors.back()));
}

TEST(SofiaAlsTest, OutlierTensorIsSubtractedFromData) {
  // Fit with O equal to a large spike: the reconstruction must track
  // Y - O, not Y.
  Problem p = MakeProblem(12, 4, 1.0, 17);
  DenseTensor spiked = p.y;
  spiked[0] += 100.0;
  DenseTensor outliers(p.y.shape(), 0.0);
  outliers[0] = 100.0;
  SofiaAlsResult res =
      SofiaAls(spiked, p.omega, outliers, p.config, &p.factors);
  EXPECT_LT(NormalizedResidualError(res.completed, p.truth), 0.05);
}

}  // namespace
}  // namespace sofia
