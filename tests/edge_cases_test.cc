#include <gtest/gtest.h>

#include <cmath>

#include "core/sofia_model.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "linalg/solve.hpp"
#include "tensor/unfold.hpp"

namespace sofia {
namespace {

/// Failure-injection and boundary-condition coverage across the library.

struct Fixture {
  std::vector<DenseTensor> truth;
  CorruptedStream stream;
  SofiaConfig config;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.config.rank = 2;
  f.config.period = 6;
  f.config.init_seasons = 3;
  // Clean streams: paper-default smoothness avoids regularization bias.
  f.config.lambda1 = 1e-3;
  f.config.lambda2 = 1e-3;
  f.config.max_init_iterations = 8;
  f.config.seed = seed;
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, 40, 2, 6, seed);
  for (size_t t = 0; t < 40; ++t) {
    f.truth.push_back(syn.tensor.SliceLastMode(t));
  }
  f.stream = Corrupt(f.truth, {0.0, 0.0, 0.0}, seed + 1);
  return f;
}

SofiaModel InitModel(Fixture& f) {
  const size_t w = f.config.InitWindow();
  std::vector<DenseTensor> is(f.stream.slices.begin(),
                              f.stream.slices.begin() + w);
  std::vector<Mask> im(f.stream.masks.begin(), f.stream.masks.begin() + w);
  return SofiaModel::Initialize(is, im, f.config);
}

TEST(EdgeCaseTest, StepWithFullyMissingSliceFallsBackToForecast) {
  Fixture f = MakeFixture(91);
  SofiaModel model = InitModel(f);
  const size_t w = f.config.InitWindow();
  model.Step(f.stream.slices[w], f.stream.masks[w]);

  // A completely unobserved slice: no data, the model must coast on its
  // seasonal forecast without corrupting any state.
  Mask empty(f.truth[0].shape(), false);
  SofiaStepResult out = model.Step(f.stream.slices[w + 1], empty);
  EXPECT_LT(NormalizedResidualError(out.imputed(), f.truth[w + 1]), 0.3);
  EXPECT_EQ(out.outliers().CountNonZero(0.0), 0u);

  // And the model keeps working on the next observed slice.
  SofiaStepResult next =
      model.Step(f.stream.slices[w + 2], f.stream.masks[w + 2]);
  EXPECT_LT(NormalizedResidualError(next.imputed(), f.truth[w + 2]), 0.3);
}

TEST(EdgeCaseTest, LongOutageDoesNotDestabilizeModel) {
  Fixture f = MakeFixture(93);
  SofiaModel model = InitModel(f);
  const size_t w = f.config.InitWindow();
  Mask empty(f.truth[0].shape(), false);
  for (size_t t = w; t < w + 12; ++t) {  // Two full blind seasons.
    model.Step(f.stream.slices[t], empty);
  }
  SofiaStepResult out =
      model.Step(f.stream.slices[w + 12], f.stream.masks[w + 12]);
  EXPECT_LT(NormalizedResidualError(out.imputed(), f.truth[w + 12]), 0.5);
}

TEST(EdgeCaseTest, StepRejectsWrongSliceShape) {
  Fixture f = MakeFixture(95);
  SofiaModel model = InitModel(f);
  DenseTensor wrong(Shape({3, 3}), 1.0);
  Mask omega(wrong.shape(), true);
  EXPECT_DEATH(model.Step(wrong, omega), "");
}

TEST(EdgeCaseTest, StepRejectsMismatchedMask) {
  Fixture f = MakeFixture(97);
  SofiaModel model = InitModel(f);
  Mask wrong(Shape({2, 2}), true);
  EXPECT_DEATH(model.Step(f.stream.slices[20], wrong), "");
}

TEST(EdgeCaseTest, ForecastHorizonZeroDies) {
  Fixture f = MakeFixture(99);
  SofiaModel model = InitModel(f);
  EXPECT_DEATH(model.Forecast(0), "");
}

TEST(EdgeCaseTest, SolveRidgeHandlesAllZeroSystem) {
  Matrix zero(3, 3, 0.0);
  std::vector<double> x = SolveRidge(zero, {0.0, 0.0, 0.0});
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCaseTest, UnfoldSingletonModes) {
  DenseTensor t(Shape({1, 4, 1}), 2.0);
  Matrix m0 = Unfold(t, 0);
  EXPECT_EQ(m0.rows(), 1u);
  EXPECT_EQ(m0.cols(), 4u);
  Matrix m1 = Unfold(t, 1);
  EXPECT_EQ(m1.rows(), 4u);
  EXPECT_EQ(m1.cols(), 1u);
  DenseTensor back = Fold(m1, t.shape(), 1);
  DenseTensor diff = back - t;
  EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
}

TEST(EdgeCaseTest, PeriodOneStreamDegradesGracefully) {
  // m = 1: "seasonal" slot collapses to a single component — SOFIA becomes
  // double-exponential smoothing on the temporal factor and must not crash.
  Fixture f = MakeFixture(101);
  f.config.period = 1;
  f.config.init_seasons = 6;  // Init window of 6 slices.
  const size_t w = f.config.InitWindow();
  std::vector<DenseTensor> is(f.stream.slices.begin(),
                              f.stream.slices.begin() + w);
  std::vector<Mask> im(f.stream.masks.begin(), f.stream.masks.begin() + w);
  SofiaModel model = SofiaModel::Initialize(is, im, f.config);
  for (size_t t = w; t < w + 10; ++t) {
    SofiaStepResult out = model.Step(f.stream.slices[t], f.stream.masks[t]);
    EXPECT_TRUE(std::isfinite(out.imputed().FrobeniusNorm()));
  }
}

}  // namespace
}  // namespace sofia
