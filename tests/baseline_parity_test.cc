// Randomized dense≡sparse parity for every baseline ported onto the
// ObservedSweep core: the original dense-scan path (`use_sparse_kernels =
// false`) and the observed-entry path must agree to ≤1e-12 on every step
// output of a corrupted stream, the sparse path must be bitwise identical
// for every thread count, and an externally shared CooList must change
// nothing. Degenerate masks (empty Ω, full Ω) are exercised explicitly.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/brst.hpp"
#include "baselines/mast.hpp"
#include "baselines/observed_sweep.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/streaming_method.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

// This binary pins the *scalar* dense↔sparse arithmetic chain: the FMA
// contraction of the vectorized instantiations drifts past the 1e-12 pin
// over a full stream by design. The vectorized-vs-scalar parity contract
// has its own coverage in tests/simd_test.cc.
const bool kForceScalarKernels = [] {
  simd::SetEnabled(false);
  return true;
}();

double MaxAbsDiff(const DenseTensor& a, const DenseTensor& b) {
  DenseTensor diff = a;
  diff -= b;
  return diff.MaxAbs();
}

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

std::unique_ptr<StreamingMethod> MakeMethod(const std::string& name,
                                            bool sparse, size_t threads) {
  if (name == "online_sgd") {
    OnlineSgdOptions o;
    o.rank = 3;
    o.use_sparse_kernels = sparse;
    o.num_threads = threads;
    return std::make_unique<OnlineSgd>(o);
  }
  if (name == "olstec") {
    OlstecOptions o;
    o.rank = 3;
    o.use_sparse_kernels = sparse;
    o.num_threads = threads;
    return std::make_unique<Olstec>(o);
  }
  if (name == "mast") {
    MastOptions o;
    o.rank = 3;
    o.use_sparse_kernels = sparse;
    o.num_threads = threads;
    return std::make_unique<Mast>(o);
  }
  if (name == "or_mstc") {
    OrMstcOptions o;
    o.rank = 3;
    o.outlier_lambda = 2.0;
    o.use_sparse_kernels = sparse;
    o.num_threads = threads;
    return std::make_unique<OrMstc>(o);
  }
  if (name == "brst") {
    BrstOptions o;
    o.rank = 4;
    o.use_sparse_kernels = sparse;
    o.num_threads = threads;
    return std::make_unique<BrstLite>(o);
  }
  if (name == "smf") {
    SmfOptions o;
    o.rank = 3;
    o.period = 4;
    o.use_sparse_kernels = sparse;
    o.num_threads = threads;
    return std::make_unique<Smf>(o);
  }
  return nullptr;
}

class BaselineParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineParityTest, DenseAndSparsePathsAgreeOnCorruptedStream) {
  std::vector<DenseTensor> truth = MakeTruth(24, 91);
  CorruptedStream stream = Corrupt(truth, {25.0, 10.0, 3.0}, 92);

  std::unique_ptr<StreamingMethod> dense = MakeMethod(GetParam(), false, 1);
  std::unique_ptr<StreamingMethod> sparse = MakeMethod(GetParam(), true, 1);
  std::unique_ptr<StreamingMethod> threaded = MakeMethod(GetParam(), true, 3);
  std::unique_ptr<StreamingMethod> shared = MakeMethod(GetParam(), true, 1);
  ASSERT_NE(dense, nullptr);

  for (size_t t = 0; t < truth.size(); ++t) {
    const DenseTensor& slice = stream.slices[t];
    const Mask& omega = stream.masks[t];
    DenseTensor a = dense->Step(slice, omega);
    DenseTensor b = sparse->Step(slice, omega);
    DenseTensor c = threaded->Step(slice, omega);
    DenseTensor d = shared->Step(slice, omega, MakeSharedPattern(omega));
    // Dense reference vs observed-entry path: same math over the same
    // observed set, different traversal — ≤1e-12 across the whole stream.
    EXPECT_LE(MaxAbsDiff(a, b), 1e-12) << GetParam() << " t=" << t;
    // Thread count must not change a single bit.
    EXPECT_EQ(MaxAbsDiff(b, c), 0.0) << GetParam() << " t=" << t;
    // An externally shared pattern must not change a single bit either.
    EXPECT_EQ(MaxAbsDiff(b, d), 0.0) << GetParam() << " t=" << t;
  }
}

TEST_P(BaselineParityTest, ObserveAdvancesStateExactlyLikeStep) {
  // Observe() skips only output-only work (the returned dense estimate and
  // its final temporal re-solve), so a stream consumed through Observe must
  // leave bitwise the same state as one consumed through Step — on both
  // kernel paths.
  std::vector<DenseTensor> truth = MakeTruth(12, 95);
  CorruptedStream stream = Corrupt(truth, {25.0, 10.0, 3.0}, 96);
  for (bool sparse : {false, true}) {
    std::unique_ptr<StreamingMethod> stepping =
        MakeMethod(GetParam(), sparse, 1);
    std::unique_ptr<StreamingMethod> observing =
        MakeMethod(GetParam(), sparse, 1);
    for (size_t t = 0; t < truth.size(); ++t) {
      const bool score = t % 3 == 2;  // Score every third slice.
      DenseTensor a = stepping->Step(stream.slices[t], stream.masks[t]);
      if (score) {
        DenseTensor b = observing->Step(stream.slices[t], stream.masks[t]);
        DenseTensor diff = a;
        diff -= b;
        EXPECT_EQ(diff.MaxAbs(), 0.0)
            << GetParam() << " sparse=" << sparse << " t=" << t;
      } else {
        observing->Observe(stream.slices[t], stream.masks[t]);
      }
    }
  }
}

TEST_P(BaselineParityTest, DegenerateMasksAgreeAcrossPaths) {
  std::vector<DenseTensor> truth = MakeTruth(6, 93);
  Rng rng(94);
  std::vector<Mask> masks;
  for (size_t t = 0; t < truth.size(); ++t) {
    Mask omega(truth[t].shape(), true);
    if (t == 1 || t == 3) {
      omega = Mask(truth[t].shape(), false);  // Empty Ω: nothing observed.
    } else if (t >= 4) {
      for (size_t k = 0; k < omega.shape().NumElements(); ++k) {
        omega.Set(k, rng.Bernoulli(0.5));
      }
    }  // t == 0, 2: full Ω.
    masks.push_back(omega);
  }

  std::unique_ptr<StreamingMethod> dense = MakeMethod(GetParam(), false, 1);
  std::unique_ptr<StreamingMethod> sparse = MakeMethod(GetParam(), true, 1);
  for (size_t t = 0; t < truth.size(); ++t) {
    DenseTensor a = dense->Step(truth[t], masks[t]);
    DenseTensor b = sparse->Step(truth[t], masks[t]);
    EXPECT_LE(MaxAbsDiff(a, b), 1e-12) << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, BaselineParityTest,
                         ::testing::Values("online_sgd", "olstec", "mast",
                                           "or_mstc", "brst", "smf"));

}  // namespace
}  // namespace sofia
