// Streaming-runtime contract tests (eval/stream_pipeline.hpp):
//  - a 60-step guarded comparison is *bitwise* identical across workers in
//    {1, 2, 4, 8} x pipeline on/off x windowed ingest — the runtime knobs
//    move wall-clock shape only;
//  - a stable-mask stream runs allocation-free through the kernel scratch
//    after the first compute window (arena growth counter pinned at zero);
//  - slab ownership holds across the whole run (the executor partitions by
//    the same static OwnedRange every batch — runs() counts the batches);
//  - a mid-stream drain (Run with a limit under the stream length, ingest
//    prefetched beyond it) returns cleanly and matches the full run's
//    prefix, and the pipeline object is reusable afterwards.

#include "eval/stream_pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_guard.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

std::vector<DenseTensor> MakeTruth(size_t steps, uint64_t seed) {
  SyntheticTensor syn = MakeSinusoidTensor(6, 5, steps, 3, 4, seed);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < steps; ++t) {
    truth.push_back(syn.tensor.SliceLastMode(t));
  }
  return truth;
}

/// Fresh guarded-SOFIA + OnlineSGD pair. Methods are stateful, so every
/// runtime configuration gets its own instances; the guard's checkpoint
/// ring exercises the async aux-lane serialization whenever the pipeline's
/// executor is adopted.
std::vector<std::unique_ptr<StreamingMethod>> MakeMethods() {
  SofiaConfig config;
  config.rank = 3;
  config.period = 4;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.max_init_iterations = 15;
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  methods.push_back(std::make_unique<StreamGuard>(
      std::make_unique<SofiaStream>(config), StreamGuardOptions{}));
  methods.push_back(std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = 3}));
  return methods;
}

std::vector<StreamingMethod*> Raw(
    const std::vector<std::unique_ptr<StreamingMethod>>& owned) {
  std::vector<StreamingMethod*> out;
  for (const auto& m : owned) out.push_back(m.get());
  return out;
}

void ExpectBitwiseEqual(const StreamRunResult& got,
                        const StreamRunResult& want) {
  ASSERT_EQ(got.nre.size(), want.nre.size());
  for (size_t t = 0; t < want.nre.size(); ++t) {
    // EXPECT_EQ on doubles: exact, not approximate — the runtime claims
    // bitwise identity, not tolerance.
    EXPECT_EQ(got.nre[t], want.nre[t]) << "t=" << t;
  }
  ASSERT_EQ(got.observed_nre.size(), want.observed_nre.size());
  for (size_t t = 0; t < want.observed_nre.size(); ++t) {
    EXPECT_EQ(got.observed_nre[t], want.observed_nre[t]) << "t=" << t;
    EXPECT_EQ(got.missing_nre[t], want.missing_nre[t]) << "t=" << t;
  }
  EXPECT_EQ(got.rae, want.rae);
  EXPECT_EQ(got.rae_post_init, want.rae_post_init);
}

TEST(StreamPipelineTest, GuardedRunBitwiseIdenticalAcrossRuntimeKnobs) {
  const size_t steps = 60;
  std::vector<DenseTensor> truth = MakeTruth(steps, 71);
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, 72);

  StreamEvalOptions reference_options;
  reference_options.pattern_storage = PatternStorage::kCsf;
  reference_options.workers = 1;
  reference_options.pipeline_depth = 1;
  reference_options.window = 1;
  auto reference_owned = MakeMethods();
  std::vector<MethodRunResult> reference = RunStreamPipeline(
      Raw(reference_owned), stream, truth, reference_options);
  ASSERT_EQ(reference.size(), 2u);
  ASSERT_EQ(reference[0].run.nre.size(), steps);
  ASSERT_TRUE(reference[0].run.guarded);
  ASSERT_GT(reference[0].run.guard.checkpoints_saved, 0u);

  struct Knobs {
    size_t workers, depth, window;
  };
  const Knobs configs[] = {
      {1, 2, 1},  // Overlap on, single worker.
      {2, 1, 1}, {2, 2, 1},  // Pipeline off/on at 2 workers.
      {4, 1, 1}, {4, 2, 1},  // ... at 4 workers.
      {8, 2, 1},             // Oversubscribed (1-core CI boxes included).
      {4, 2, 3}, {4, 3, 4},  // Windowed ingest, deeper ring.
  };
  for (const Knobs& knobs : configs) {
    SCOPED_TRACE(testing::Message() << "workers=" << knobs.workers
                                    << " depth=" << knobs.depth
                                    << " window=" << knobs.window);
    StreamEvalOptions options = reference_options;
    options.workers = knobs.workers;
    options.pipeline_depth = knobs.depth;
    options.window = knobs.window;
    auto owned = MakeMethods();
    std::vector<MethodRunResult> got =
        RunStreamPipeline(Raw(owned), stream, truth, options);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t m = 0; m < got.size(); ++m) {
      SCOPED_TRACE(got[m].name);
      ExpectBitwiseEqual(got[m].run, reference[m].run);
    }
    // The guard saw the same stream: identical trip/checkpoint history
    // (async checkpointing changes when bytes are written, not what).
    EXPECT_EQ(got[0].run.guard.checkpoints_saved,
              reference[0].run.guard.checkpoints_saved);
    EXPECT_EQ(got[0].run.guard.input_trips,
              reference[0].run.guard.input_trips);
    EXPECT_EQ(got[0].run.guard.health_trips,
              reference[0].run.guard.health_trips);
    // Knob echo in the telemetry.
    EXPECT_TRUE(got[0].run.pipelined);
    EXPECT_EQ(got[0].run.pipeline.workers, knobs.workers);
    EXPECT_EQ(got[0].run.pipeline.pipeline_depth, knobs.depth);
    EXPECT_EQ(got[0].run.pipeline.window, knobs.window);
    EXPECT_EQ(got[0].run.pipeline.steps, steps);
  }
}

TEST(StreamPipelineTest, SteadyStateStepsAreAllocationFree) {
  // One fixed outage mask across the whole stream: after the first compute
  // window warms the executor's arena, no kernel-scratch growth may occur.
  std::vector<DenseTensor> truth = MakeTruth(30, 31);
  CorruptedStream stream = Corrupt(truth, {40.0, 0.0, 0.0}, 32);
  for (size_t t = 1; t < stream.masks.size(); ++t) {
    stream.masks[t] = stream.masks[0];
  }

  StreamEvalOptions options;
  options.pattern_storage = PatternStorage::kCsf;
  options.workers = 2;
  options.pipeline_depth = 2;
  auto owned = MakeMethods();
  StreamPipeline pipeline(stream, truth, options);
  std::vector<MethodRunResult> results = pipeline.Run(Raw(owned));

  const PipelineTelemetry& telemetry = pipeline.telemetry();
  EXPECT_GT(telemetry.arena_growth_total, 0u) << "arena never used";
  EXPECT_EQ(telemetry.arena_growth_steady, 0u)
      << "a steady-state step allocated kernel scratch";
  EXPECT_EQ(results[0].run.pattern_builds, 1u);
  EXPECT_EQ(results[0].run.pattern_reuses, truth.size() - 1);
}

TEST(StreamPipelineTest, ExecutorShardsEveryBatchWithTheSamePartition) {
  std::vector<DenseTensor> truth = MakeTruth(24, 11);
  CorruptedStream stream = Corrupt(truth, {30.0, 5.0, 2.0}, 12);

  StreamEvalOptions options;
  options.workers = 4;
  auto owned = MakeMethods();
  StreamPipeline pipeline(stream, truth, options);
  ShardExecutor* executor = pipeline.executor();
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->num_threads(), 4u);

  pipeline.Run(Raw(owned));
  // Compute ran through the sharded lane: each of runs() batches used the
  // static OwnedRange partition (ownership stability itself is pinned in
  // shard_executor_test.cc — here we pin that the pipeline actually
  // routed the work through it).
  EXPECT_GT(executor->runs(), 0u);
  EXPECT_EQ(pipeline.telemetry().workers, 4u);
}

TEST(StreamPipelineTest, MidStreamDrainReturnsCleanlyAndMatchesPrefix) {
  const size_t steps = 40;
  std::vector<DenseTensor> truth = MakeTruth(steps, 51);
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, 52);

  StreamEvalOptions options;
  options.pattern_storage = PatternStorage::kCsf;
  options.workers = 2;
  options.pipeline_depth = 3;  // Prefetch reaches past the drain point.
  options.window = 2;

  auto full_owned = MakeMethods();
  std::vector<MethodRunResult> full =
      RunStreamPipeline(Raw(full_owned), stream, truth, options);

  // Same runtime, stopped mid-stream: depth-3 ingest has windows in flight
  // beyond the limit when compute stops — they must be drained, not leaked
  // (TSan-checked in CI), and the scored prefix must match the full run.
  const size_t limit = 20;
  auto drained_owned = MakeMethods();
  StreamPipeline pipeline(stream, truth, options);
  std::vector<MethodRunResult> drained =
      pipeline.Run(Raw(drained_owned), limit);
  ASSERT_EQ(drained.size(), full.size());
  for (size_t m = 0; m < drained.size(); ++m) {
    SCOPED_TRACE(drained[m].name);
    ASSERT_EQ(drained[m].run.nre.size(), limit);
    for (size_t t = 0; t < limit; ++t) {
      EXPECT_EQ(drained[m].run.nre[t], full[m].run.nre[t]) << "t=" << t;
    }
  }
  EXPECT_EQ(pipeline.telemetry().steps, limit);

  // The pipeline object survives the drain: a fresh full pass on the same
  // (persistent) executor reproduces the reference bitwise.
  const uint64_t runs_after_drain = pipeline.executor()->runs();
  auto reuse_owned = MakeMethods();
  std::vector<MethodRunResult> reused = pipeline.Run(Raw(reuse_owned));
  EXPECT_GT(pipeline.executor()->runs(), runs_after_drain);
  for (size_t m = 0; m < reused.size(); ++m) {
    SCOPED_TRACE(reused[m].name);
    ExpectBitwiseEqual(reused[m].run, full[m].run);
  }
}

TEST(StreamPipelineTest, OverlapTelemetryAccountsEveryIngestBatch) {
  std::vector<DenseTensor> truth = MakeTruth(24, 61);
  CorruptedStream stream = Corrupt(truth, {30.0, 5.0, 2.0}, 62);

  StreamEvalOptions options;
  options.workers = 2;
  options.pipeline_depth = 2;
  options.window = 3;
  auto owned = MakeMethods();
  std::vector<MethodRunResult> results =
      RunStreamPipeline(Raw(owned), stream, truth, options);

  const PipelineTelemetry& telemetry = results[0].run.pipeline;
  EXPECT_EQ(telemetry.ingest_jobs, (truth.size() + 2) / 3);
  EXPECT_GT(telemetry.ingest_seconds, 0.0);
  // Stall time is bounded by total ingest time (overlap can only hide it)
  // plus a scheduler allowance: the driver's Wait also covers the latency
  // of getting the aux thread scheduled at all, which on a loaded single
  // core is timeslice-scale per ingest job, not nanoseconds.
  EXPECT_LE(telemetry.ingest_stall_seconds,
            telemetry.ingest_seconds + 0.020 * telemetry.ingest_jobs);
}

}  // namespace
}  // namespace sofia
