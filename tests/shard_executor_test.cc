// ShardExecutor contract tests: the static block partition (contiguous,
// disjoint, balanced, and *identical* across Runs — the property slab
// ownership is built on), every-task-once execution, the caller acting as
// worker 0, arena growth accounting, aux-lane FIFO/ticket semantics, and
// clean shutdown with jobs still pending.

#include "util/shard_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/slice_format.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

namespace sofia {
namespace {

TEST(OwnedRangeTest, TilesTheTaskSpaceContiguouslyAndBalanced) {
  for (size_t tasks : {size_t{0}, size_t{1}, size_t{5}, size_t{7},
                       size_t{16}, size_t{97}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                           size_t{8}}) {
      size_t cursor = 0;
      size_t min_len = tasks, max_len = 0;
      for (size_t w = 0; w < threads; ++w) {
        const auto [begin, end] = ShardExecutor::OwnedRange(tasks, threads, w);
        // Contiguous and disjoint: each worker picks up where the previous
        // one stopped.
        EXPECT_EQ(begin, cursor) << "tasks=" << tasks << " threads="
                                 << threads << " w=" << w;
        EXPECT_LE(begin, end);
        cursor = end;
        min_len = std::min(min_len, end - begin);
        max_len = std::max(max_len, end - begin);
      }
      EXPECT_EQ(cursor, tasks);  // Full coverage.
      if (tasks >= threads) EXPECT_LE(max_len - min_len, 1u);
    }
  }
}

TEST(OwnedRangeTest, IsAPureFunctionOfTasksAndThreads) {
  // The whole point: the mapping must not depend on run order, load, or
  // history — only on (T, W).
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(ShardExecutor::OwnedRange(10, 4, 0),
              (std::pair<size_t, size_t>{0, 3}));
    EXPECT_EQ(ShardExecutor::OwnedRange(10, 4, 1),
              (std::pair<size_t, size_t>{3, 6}));
    EXPECT_EQ(ShardExecutor::OwnedRange(10, 4, 2),
              (std::pair<size_t, size_t>{6, 8}));
    EXPECT_EQ(ShardExecutor::OwnedRange(10, 4, 3),
              (std::pair<size_t, size_t>{8, 10}));
  }
}

TEST(ShardExecutorTest, EveryTaskRunsExactlyOnce) {
  ShardExecutor executor(4);
  for (size_t tasks : {size_t{1}, size_t{3}, size_t{4}, size_t{37}}) {
    std::vector<std::atomic<int>> hits(tasks);
    for (auto& h : hits) h = 0;
    executor.Run(tasks, [&](size_t t) { ++hits[t]; });
    for (size_t t = 0; t < tasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t;
    }
  }
}

TEST(ShardExecutorTest, TaskOwnershipIsStableAcrossRuns) {
  // Record which thread executed each task on every Run. The mapping must
  // be identical run after run (warm-cache slab ownership), and must match
  // the advertised OwnedRange partition.
  ShardExecutor executor(4);
  const size_t tasks = 23;
  const uint64_t runs_before = executor.runs();

  std::vector<std::vector<std::thread::id>> owner(3);
  for (auto& run : owner) {
    run.resize(tasks);
    executor.Run(tasks, [&](size_t t) { run[t] = std::this_thread::get_id(); });
  }
  EXPECT_EQ(executor.runs(), runs_before + 3);

  for (size_t r = 1; r < owner.size(); ++r) {
    for (size_t t = 0; t < tasks; ++t) {
      EXPECT_EQ(owner[r][t], owner[0][t])
          << "task " << t << " migrated between run 0 and run " << r;
    }
  }
  // Tasks within one OwnedRange block ran on one thread; the caller (this
  // thread) owns worker 0's block.
  for (size_t w = 0; w < executor.num_threads(); ++w) {
    const auto [begin, end] =
        ShardExecutor::OwnedRange(tasks, executor.num_threads(), w);
    for (size_t t = begin; t < end; ++t) {
      EXPECT_EQ(owner[0][t], owner[0][begin]);
    }
    if (w == 0 && begin < end) {
      EXPECT_EQ(owner[0][begin], std::this_thread::get_id());
    }
  }
}

TEST(ShardExecutorTest, SingleThreadRunsInline) {
  ShardExecutor executor(1);
  EXPECT_EQ(executor.num_threads(), 1u);
  std::vector<std::thread::id> owner(5);
  executor.Run(5, [&](size_t t) { owner[t] = std::this_thread::get_id(); });
  for (const auto& id : owner) EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(ScratchArenaTest, GrowthEventsCountOnlyActualGrowth) {
  ScratchArena arena;
  EXPECT_EQ(arena.growth_events(), 0u);
  arena.Doubles(0, 100);
  EXPECT_EQ(arena.growth_events(), 1u);
  // Smaller and equal requests reuse the buffer.
  arena.Doubles(0, 50);
  arena.Doubles(0, 100);
  EXPECT_EQ(arena.growth_events(), 1u);
  // Doubling policy: 150 fits the 2x-grown capacity after one more event.
  arena.Doubles(0, 150);
  EXPECT_EQ(arena.growth_events(), 2u);
  arena.Doubles(0, 200);
  EXPECT_EQ(arena.growth_events(), 2u);
  // A different slot grows independently.
  arena.Doubles(3, 10);
  EXPECT_EQ(arena.growth_events(), 3u);
}

TEST(ScratchArenaTest, DoublesZeroFillsAndRawPreserves) {
  ScratchArena arena;
  double* a = arena.Doubles(0, 8);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i], 0.0);
    a[i] = static_cast<double>(i + 1);
  }
  // Raw re-request of the same slot: contents survive.
  double* b = arena.RawDoubles(0, 8);
  EXPECT_EQ(b, a);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(b[i], static_cast<double>(i + 1));
  // Zeroing re-request wipes them again.
  double* c = arena.Doubles(0, 8);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(c[i], 0.0);
}

TEST(ShardExecutorTest, AuxJobsRunInSubmissionOrder) {
  ShardExecutor executor(2);
  std::mutex mutex;
  std::vector<int> order;
  uint64_t last = 0;
  for (int i = 0; i < 8; ++i) {
    last = executor.Submit([&, i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    });
  }
  executor.Wait(last);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ShardExecutorTest, WaitCoversEarlierTicketsAndStaleOnes) {
  ShardExecutor executor(2);
  std::atomic<int> done{0};
  uint64_t first = executor.Submit([&] { ++done; });
  uint64_t second = executor.Submit([&] { ++done; });
  executor.Wait(second);  // FIFO: waiting on the later job covers both.
  EXPECT_EQ(done.load(), 2);
  executor.Wait(first);   // Already satisfied — returns immediately.
  executor.DrainAux();
  executor.Wait(second);  // Stale after drain — still a no-op.
}

TEST(ShardExecutorTest, AuxLaneOverlapsComputeRuns) {
  ShardExecutor executor(2);
  std::atomic<bool> aux_ran{false};
  executor.Submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    aux_ran = true;
  });
  // Compute batches proceed while the aux job is still in flight.
  std::atomic<int> sum{0};
  executor.Run(16, [&](size_t t) { sum += static_cast<int>(t); });
  EXPECT_EQ(sum.load(), 120);
  executor.DrainAux();
  EXPECT_TRUE(aux_ran.load());
}

TEST(ShardExecutorTest, DestructionDrainsPendingAuxJobs) {
  std::atomic<int> completed{0};
  {
    ShardExecutor executor(3);
    for (int i = 0; i < 5; ++i) {
      executor.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++completed;
      });
    }
    // No Wait: the destructor must drain the queue, not abandon it.
  }
  EXPECT_EQ(completed.load(), 5);
}

TEST(ShardExecutorTest, DestructionDrainsPendingJournalAppendsToDisk) {
  // The durability layer's shutdown-ordering contract: journal appends
  // submitted to the aux lane and never Wait()ed on must still reach the
  // file before the executor dies — a clean process exit loses nothing.
  char tmpl[] = "/tmp/sofia_shardwal_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string path = std::string(dir) + "/wal-0.slices";

  const Shape shape({2, 3});
  constexpr size_t kRecords = 12;
  {
    slicefmt::SliceFileWriter writer;
    ASSERT_TRUE(writer.Create(path, shape, 0));
    ShardExecutor executor(3);
    for (size_t step = 0; step < kRecords; ++step) {
      executor.Submit([&writer, &shape, step] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        DenseTensor slice(shape);
        for (size_t k = 0; k < slice.NumElements(); ++k) {
          slice[k] = static_cast<double>(step * 100 + k);
        }
        writer.Append(step, slice, Mask(shape, /*observed=*/true));
      });
    }
    // Executor destroyed first (drains the lane), THEN the writer closes:
    // the ordering DurableGuard's member layout relies on.
  }
  slicefmt::SliceFileReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_FALSE(reader.truncated());
  ASSERT_EQ(reader.num_records(), kRecords);
  for (size_t step = 0; step < kRecords; ++step) {
    EXPECT_EQ(reader.record(step).step, step);  // FIFO lane: in order.
    DenseTensor slice;
    Mask mask;
    reader.Decode(step, &slice, &mask);
    EXPECT_EQ(slice[1], static_cast<double>(step * 100 + 1));
  }
}

}  // namespace
}  // namespace sofia
