#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(SolveTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  std::vector<double> x = SolveLinear(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  std::vector<double> x = SolveLinear(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveTest, DetectsSingularMatrix) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  LuFactors f = LuFactorize(a);
  EXPECT_TRUE(f.singular);
}

TEST(SolveTest, SolveRidgeRecoversFromSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  // The ridge-shifted system is solvable and close to a least-norm solution.
  std::vector<double> x = SolveRidge(a, {3, 6}, 1e-8);
  std::vector<double> ax = MatVec(a, x);
  EXPECT_NEAR(ax[0], 3.0, 1e-3);
  EXPECT_NEAR(ax[1], 6.0, 1e-3);
}

TEST(SolveTest, InverseTimesMatrixIsIdentity) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(5, 5, rng);
  for (size_t i = 0; i < 5; ++i) a(i, i) += 5.0;  // Well-conditioned.
  Matrix inv = Inverse(a);
  Matrix prod = MatMul(a, inv);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(5)), 1e-10);
}

TEST(SolveTest, DeterminantOfTriangular) {
  Matrix a = Matrix::FromRows({{2, 5, 1}, {0, 3, 7}, {0, 0, 4}});
  EXPECT_NEAR(Determinant(a), 24.0, 1e-10);
}

TEST(SolveTest, DeterminantSignTracksRowSwaps) {
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  EXPECT_NEAR(Determinant(a), -1.0, 1e-12);
}

TEST(SolveTest, CholeskyFactorizesSpd) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Matrix l;
  ASSERT_TRUE(CholeskyFactorize(a, &l));
  Matrix llt = MatMul(l, l.Transpose());
  EXPECT_LT(llt.MaxAbsDiff(a), 1e-12);
}

TEST(SolveTest, CholeskyRejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // Eigenvalues 3, -1.
  Matrix l;
  EXPECT_FALSE(CholeskyFactorize(a, &l));
}

TEST(SolveTest, SolveSpdMatchesLu) {
  Rng rng(11);
  Matrix b = Matrix::RandomNormal(6, 6, rng);
  Matrix a = MatMul(b.Transpose(), b);
  for (size_t i = 0; i < 6; ++i) a(i, i) += 1.0;
  std::vector<double> rhs = rng.NormalVector(6);
  std::vector<double> x1 = SolveSpd(a, rhs);
  std::vector<double> x2 = SolveLinear(a, rhs);
  EXPECT_LT(MaxAbsDiffVec(x1, x2), 1e-9);
}

// Property: random well-conditioned systems solve to tiny residuals.
class SolvePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolvePropertyTest, ResidualIsSmall) {
  Rng rng(GetParam());
  const size_t n = 2 + GetParam() % 9;
  Matrix a = Matrix::RandomNormal(n, n, rng);
  for (size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> x_true = rng.NormalVector(n);
  std::vector<double> b = MatVec(a, x_true);
  std::vector<double> x = SolveLinear(a, b);
  EXPECT_LT(MaxAbsDiffVec(x, x_true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolvePropertyTest, ::testing::Range(1, 17));

}  // namespace
}  // namespace sofia
