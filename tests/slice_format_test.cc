// Binary slice format (data/slice_format): bitwise roundtrips, valid-prefix
// truncation at torn or bit-rotted records, canonical decode parity with
// the CSV stream format, and torn-append behavior under injected faults —
// the guarantees the write-ahead journal's replay correctness rests on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "data/slice_format.hpp"
#include "data/stream_io.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace slicefmt {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sofia_slicefmt_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// Small stream with awkward doubles (no short decimal representation)
/// and ~30% missing entries.
TensorStream MakeStream(size_t steps, uint64_t seed) {
  TensorStream stream;
  Rng rng(seed);
  const Shape shape({3, 4});
  for (size_t t = 0; t < steps; ++t) {
    DenseTensor slice(shape);
    Mask mask(shape, /*observed=*/true);
    for (size_t k = 0; k < slice.NumElements(); ++k) {
      slice[k] = (rng.Uniform() - 0.5) / 3.0;
      if (rng.Uniform() < 0.3) {
        mask.Set(k, false);
        slice[k] = 0.0;  // Canonical form: unobserved entries are zero.
      }
    }
    stream.slices.push_back(std::move(slice));
    stream.masks.push_back(std::move(mask));
  }
  return stream;
}

void ExpectStreamsBitwiseEqual(const TensorStream& a, const TensorStream& b,
                               size_t limit = SIZE_MAX) {
  ASSERT_EQ(std::min(a.slices.size(), limit), b.slices.size());
  for (size_t t = 0; t < b.slices.size(); ++t) {
    ASSERT_EQ(a.slices[t].shape(), b.slices[t].shape());
    for (size_t k = 0; k < a.slices[t].NumElements(); ++k) {
      ASSERT_EQ(a.slices[t][k], b.slices[t][k])
          << "slice " << t << " entry " << k;
      ASSERT_EQ(a.masks[t].Get(k), b.masks[t].Get(k))
          << "mask " << t << " entry " << k;
    }
  }
}

TEST(SliceFormatTest, RoundTripIsBitwiseExact) {
  const std::string path = MakeTempDir() + "/stream.slices";
  TensorStream stream = MakeStream(7, 11);
  std::string error;
  ASSERT_TRUE(WriteSliceFile(path, stream, /*sequence=*/42, &error)) << error;

  SliceFileReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.sequence(), 42u);
  EXPECT_EQ(reader.num_records(), 7u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.slice_shape(), Shape({3, 4}));
  for (size_t t = 0; t < reader.num_records(); ++t) {
    EXPECT_EQ(reader.record(t).step, t);
  }

  TensorStream got;
  ASSERT_TRUE(ReadSliceFile(path, &got, &error)) << error;
  ExpectStreamsBitwiseEqual(stream, got);
}

TEST(SliceFormatTest, TornTailTruncatesToValidPrefix) {
  const std::string path = MakeTempDir() + "/stream.slices";
  TensorStream stream = MakeStream(6, 12);
  ASSERT_TRUE(WriteSliceFile(path, stream, 0));
  const size_t full = fault::FileSize(path);

  // Chop the file at every byte boundary: the reader must expose only
  // whole validated records and flag the dropped tail — never crash.
  size_t last_records = 6;
  for (size_t keep = full - 1; keep >= 8; keep -= 7) {
    ASSERT_TRUE(fault::TruncateFile(path, keep));
    SliceFileReader reader;
    std::string error;
    if (!reader.Open(path, &error)) {
      // Header itself torn: fine, reported as an error, not a crash.
      continue;
    }
    EXPECT_TRUE(reader.truncated());
    EXPECT_LE(reader.num_records(), last_records);
    last_records = reader.num_records();
    TensorStream got;
    ASSERT_TRUE(ReadSliceFile(path, &got, &error)) << error;
    ExpectStreamsBitwiseEqual(stream, got, reader.num_records());
  }
}

TEST(SliceFormatTest, BitRotDropsTheRecordAndEverythingAfter) {
  const std::string dir = MakeTempDir();
  TensorStream stream = MakeStream(5, 13);
  const std::string clean = dir + "/clean.slices";
  ASSERT_TRUE(WriteSliceFile(clean, stream, 0));
  const size_t full = fault::FileSize(clean);

  // Sample byte positions across the whole file; a flip in record k keeps
  // records [0, k) replayable and drops the rest (header flips fail Open).
  for (size_t offset = 1; offset < full; offset += 11) {
    const std::string path = dir + "/rot.slices";
    ASSERT_TRUE(WriteSliceFile(path, stream, 0));
    ASSERT_TRUE(fault::FlipFileBit(path, offset, offset % 8));
    SliceFileReader reader;
    if (!reader.Open(path)) continue;  // Header flip.
    if (reader.num_records() < stream.slices.size()) {
      EXPECT_TRUE(reader.truncated()) << "flip at " << offset;
    }
    TensorStream got;
    ASSERT_TRUE(ReadSliceFile(path, &got));
    ExpectStreamsBitwiseEqual(stream, got, reader.num_records());
  }
}

TEST(SliceFormatTest, TornAppendLeavesPriorRecordsReplayable) {
  const std::string path = MakeTempDir() + "/journal.slices";
  TensorStream stream = MakeStream(4, 14);
  SliceFileWriter writer;
  ASSERT_TRUE(writer.Create(path, stream.slices[0].shape(), 9));
  ASSERT_TRUE(writer.Append(0, stream.slices[0], stream.masks[0]));
  ASSERT_TRUE(writer.Append(1, stream.slices[1], stream.masks[1]));

  // Ops are only counted while a plan is armed, so the next append is op 0
  // at journal.append; tear it partway through.
  fault::ScopedFaultPlan plan({"journal.append", fault::FaultKind::kTornWrite,
                               /*at=*/0, 1, /*fraction=*/0.5});
  bool crashed = false;
  try {
    writer.Append(2, stream.slices[2], stream.masks[2]);
  } catch (const fault::SimulatedCrash& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, "journal.append");
  }
  fault::Reset();
  ASSERT_TRUE(crashed);

  SliceFileReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.num_records(), 2u);  // The torn record 2 is dropped.
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.sequence(), 9u);
  TensorStream got;
  ASSERT_TRUE(ReadSliceFile(path, &got));
  ExpectStreamsBitwiseEqual(stream, got, 2);
}

TEST(SliceFormatTest, CsvAndBinaryDecodeIdentically) {
  // The CSV stream format writes doubles at precision 17, so both formats
  // round-trip bitwise — slice_convert can translate either direction
  // without changing a single entry.
  const std::string dir = MakeTempDir();
  TensorStream stream = MakeStream(5, 15);

  std::ostringstream csv;
  WriteStreamCsv(csv, stream);
  std::istringstream csv_in(csv.str());
  TensorStream from_csv = ReadStreamCsv(csv_in);

  const std::string bin = dir + "/stream.slices";
  ASSERT_TRUE(WriteSliceFile(bin, stream, 0));
  TensorStream from_bin;
  ASSERT_TRUE(ReadSliceFile(bin, &from_bin));

  ExpectStreamsBitwiseEqual(from_csv, from_bin);
}

TEST(SliceFormatTest, TextBinaryTextRoundTripIsIdentity) {
  // The tools/slice_convert contract: csv -> binary -> csv reproduces the
  // text byte-for-byte (the CSV writer emits max_digits10 doubles, the
  // binary format raw IEEE bytes — nothing rounds anywhere).
  TensorStream stream = MakeStream(4, 16);
  std::ostringstream original;
  WriteStreamCsv(original, stream);

  const std::string bin = MakeTempDir() + "/via.slices";
  std::istringstream csv_in(original.str());
  ASSERT_TRUE(WriteSliceFile(bin, ReadStreamCsv(csv_in), 0));
  TensorStream back;
  ASSERT_TRUE(ReadSliceFile(bin, &back));
  std::ostringstream roundtripped;
  WriteStreamCsv(roundtripped, back);
  EXPECT_EQ(original.str(), roundtripped.str());
}

TEST(SliceFormatTest, RejectsGarbageAndEmptyFiles) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/garbage.slices";
  {
    SliceFileWriter writer;
    ASSERT_TRUE(writer.Create(path, Shape({2, 2}), 0));
  }
  ASSERT_TRUE(fault::FlipFileBit(path, 0, 4));  // Break the magic.
  SliceFileReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
  EXPECT_FALSE(reader.Open(dir + "/missing.slices", &error));

  TensorStream empty;
  EXPECT_FALSE(WriteSliceFile(dir + "/empty.slices", empty, 0, &error));
}

}  // namespace
}  // namespace slicefmt
}  // namespace sofia
