#include "data/dataset_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"

namespace sofia {
namespace {

/// Lag-m autocorrelation of the slice-mean series: high values certify the
/// seasonality the simulators promise.
double SeasonalAutocorrelation(const Dataset& d) {
  std::vector<double> means;
  means.reserve(d.slices.size());
  for (const DenseTensor& slice : d.slices) {
    double s = 0.0;
    for (size_t k = 0; k < slice.NumElements(); ++k) s += slice[k];
    means.push_back(s / static_cast<double>(slice.NumElements()));
  }
  const double mean = Mean(means);
  double num = 0.0, den = 0.0;
  for (size_t t = 0; t + d.period < means.size(); ++t) {
    num += (means[t] - mean) * (means[t + d.period] - mean);
  }
  for (double v : means) den += (v - mean) * (v - mean);
  return den > 0.0 ? num / den : 0.0;
}

class DatasetSimTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSimTest, SmallScaleShapeAndLength) {
  Dataset d = MakeDatasetByName(GetParam(), DatasetScale::kSmall);
  ASSERT_FALSE(d.slices.empty());
  EXPECT_GT(d.period, 0u);
  EXPECT_GT(d.rank, 0u);
  EXPECT_GT(d.forecast_steps, 0u);
  // Enough stream for init (3 seasons) + dynamic phase + forecast horizon.
  EXPECT_GT(d.slices.size(), 3 * d.period + d.forecast_steps);
  for (const DenseTensor& slice : d.slices) {
    EXPECT_EQ(slice.shape(), d.slices[0].shape());
    EXPECT_EQ(slice.order(), 2u);
  }
}

TEST_P(DatasetSimTest, HasStrongSeasonality) {
  Dataset d = MakeDatasetByName(GetParam(), DatasetScale::kSmall);
  EXPECT_GT(SeasonalAutocorrelation(d), 0.5) << d.name;
}

TEST_P(DatasetSimTest, DeterministicForFixedSeed) {
  Dataset a = MakeDatasetByName(GetParam(), DatasetScale::kSmall);
  Dataset b = MakeDatasetByName(GetParam(), DatasetScale::kSmall);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (size_t t = 0; t < a.slices.size(); ++t) {
    DenseTensor diff = a.slices[t] - b.slices[t];
    EXPECT_DOUBLE_EQ(diff.FrobeniusNorm(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSimTest,
                         ::testing::Values("intel", "network", "chicago",
                                           "nyc"));

TEST(DatasetSimPaperScaleTest, MatchesTableThreeDimensions) {
  // Validate against Table III without materializing the big streams more
  // than once each.
  Dataset intel = MakeIntelLabSensor(DatasetScale::kPaper);
  EXPECT_EQ(intel.slices[0].shape().ToString(), "54x4");
  EXPECT_EQ(intel.slices.size(), 1152u);
  EXPECT_EQ(intel.period, 144u);
  EXPECT_EQ(intel.rank, 4u);

  Dataset nyc = MakeNycTaxi(DatasetScale::kPaper);
  EXPECT_EQ(nyc.slices[0].shape().ToString(), "265x265");
  EXPECT_EQ(nyc.slices.size(), 904u);
  EXPECT_EQ(nyc.period, 7u);
  EXPECT_EQ(nyc.rank, 5u);
}

TEST(DatasetSimTest, AllDatasetsReturnsFourInPaperOrder) {
  std::vector<Dataset> all = MakeAllDatasets(DatasetScale::kSmall);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "IntelLabSensor");
  EXPECT_EQ(all[1].name, "NetworkTraffic");
  EXPECT_EQ(all[2].name, "ChicagoTaxi");
  EXPECT_EQ(all[3].name, "NycTaxi");
}

TEST(DatasetSimTest, UnknownNameDies) {
  EXPECT_DEATH(MakeDatasetByName("mars-rover", DatasetScale::kSmall),
               "unknown dataset");
}

}  // namespace
}  // namespace sofia
