#include <gtest/gtest.h>

#include <memory>

#include "baselines/mast.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"

namespace sofia {
namespace {

/// End-to-end checks of the paper's headline claims on a scaled-down
/// taxi-like stream. These run the same harness the benches use.

TEST(IntegrationTest, SofiaBeatsNonRobustStreamersUnderCorruption) {
  // A (50, 20, 4) grid point of the Fig. 3/4 experiment.
  Dataset d = MakeChicagoTaxi(DatasetScale::kSmall);
  // Shorten the stream to keep the test fast (init + ~3 seasons).
  d.slices.resize(6 * d.period);
  CorruptedStream stream = Corrupt(d.slices, {50.0, 20.0, 4.0}, 1001);

  SofiaStream sofia_method(MakeExperimentConfig(d, stream));
  StreamRunResult sofia_res = RunImputation(&sofia_method, stream, d.slices);

  OnlineSgd sgd(OnlineSgdOptions{.rank = d.rank});
  StreamRunResult sgd_res = RunImputation(&sgd, stream, d.slices);

  Mast mast(MastOptions{.rank = d.rank});
  StreamRunResult mast_res = RunImputation(&mast, stream, d.slices);

  // The paper's core claim (Fig. 4): lower running average error than the
  // non-robust streaming competitors under missing data + outliers.
  EXPECT_LT(sofia_res.rae, sgd_res.rae);
  EXPECT_LT(sofia_res.rae, mast_res.rae);
  // And in absolute terms the corruption is largely repaired.
  EXPECT_LT(sofia_res.rae, 0.3);
}

TEST(IntegrationTest, SofiaForecastsBeatSmfUnderOutliers) {
  // The Fig. 6 protocol in miniature: SOFIA sees missing data + outliers,
  // SMF sees fully observed data with the same outliers.
  Dataset d = MakeNetworkTraffic(DatasetScale::kSmall);
  d.slices.resize(7 * d.period);
  const size_t horizon = d.period;

  CorruptedStream sofia_stream = Corrupt(d.slices, {30.0, 20.0, 5.0}, 2001);
  CorruptedStream smf_stream = Corrupt(d.slices, {0.0, 20.0, 5.0}, 2002);

  SofiaStream sofia_method(MakeExperimentConfig(d, sofia_stream));
  const double sofia_afe =
      RunForecast(&sofia_method, sofia_stream, d.slices, horizon);

  Smf smf(SmfOptions{.rank = d.rank, .period = d.period});
  const double smf_afe = RunForecast(&smf, smf_stream, d.slices, horizon);

  EXPECT_LT(sofia_afe, smf_afe);
}

TEST(IntegrationTest, HarsherCorruptionDegradesGracefully) {
  // NRE should grow with corruption level but stay bounded (no blow-up),
  // mirroring the monotone trend across the Fig. 4 setting grid.
  Dataset d = MakeIntelLabSensor(DatasetScale::kSmall);
  d.slices.resize(6 * d.period);

  double mild_rae, harsh_rae;
  {
    CorruptedStream stream = Corrupt(d.slices, {20.0, 10.0, 2.0}, 3001);
    SofiaStream method(MakeExperimentConfig(d, stream));
    mild_rae = RunImputation(&method, stream, d.slices).rae;
  }
  {
    CorruptedStream stream = Corrupt(d.slices, {70.0, 20.0, 5.0}, 3002);
    SofiaStream method(MakeExperimentConfig(d, stream));
    harsh_rae = RunImputation(&method, stream, d.slices).rae;
  }
  EXPECT_LT(mild_rae, 1.0);
  EXPECT_LT(harsh_rae, 2.0);  // Bounded even at (70, 20, 5).
  EXPECT_LE(mild_rae, harsh_rae * 1.05);  // Monotone up to small noise.
}

}  // namespace
}  // namespace sofia
