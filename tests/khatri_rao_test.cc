#include "tensor/khatri_rao.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sofia {
namespace {

TEST(KhatriRaoTest, MatchesEquationOne) {
  // Eq. (1): (U kr W)(i*J + j, r) = U(i, r) * W(j, r).
  Matrix u = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix w = Matrix::FromRows({{5, 6}, {7, 8}, {9, 10}});
  Matrix kr = KhatriRao(u, w);
  ASSERT_EQ(kr.rows(), 6u);
  ASSERT_EQ(kr.cols(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      for (size_t r = 0; r < 2; ++r) {
        EXPECT_DOUBLE_EQ(kr(i * 3 + j, r), u(i, r) * w(j, r));
      }
    }
  }
}

TEST(KhatriRaoTest, ChainOrderMakesFirstModeFastest) {
  // KhatriRaoChain([U1, U2]) must equal U2 kr U1 (mode-1 rows fastest).
  Rng rng(3);
  Matrix u1 = Matrix::RandomNormal(2, 2, rng);
  Matrix u2 = Matrix::RandomNormal(3, 2, rng);
  Matrix chain = KhatriRaoChain({u1, u2});
  Matrix expected = KhatriRao(u2, u1);
  EXPECT_LT(chain.MaxAbsDiff(expected), 1e-14);
}

TEST(KhatriRaoTest, SkipRemovesTheRightFactor) {
  Rng rng(5);
  Matrix u1 = Matrix::RandomNormal(2, 3, rng);
  Matrix u2 = Matrix::RandomNormal(3, 3, rng);
  Matrix u3 = Matrix::RandomNormal(4, 3, rng);
  Matrix skip1 = KhatriRaoSkip({u1, u2, u3}, 1);
  Matrix expected = KhatriRao(u3, u1);
  EXPECT_LT(skip1.MaxAbsDiff(expected), 1e-14);
}

TEST(KhatriRaoTest, SingleFactorChainIsIdentityOp) {
  Rng rng(7);
  Matrix u = Matrix::RandomNormal(4, 2, rng);
  Matrix chain = KhatriRaoChain({u});
  EXPECT_LT(chain.MaxAbsDiff(u), 1e-15);
}

// Property: the Gram identity (A kr B)^T (A kr B) = (A^T A) ⊛ (B^T B).
class KhatriRaoGramTest : public ::testing::TestWithParam<int> {};

TEST_P(KhatriRaoGramTest, GramIdentity) {
  Rng rng(GetParam());
  const size_t rank = 1 + GetParam() % 5;
  Matrix a = Matrix::RandomNormal(3 + GetParam() % 4, rank, rng);
  Matrix b = Matrix::RandomNormal(2 + GetParam() % 5, rank, rng);
  Matrix lhs = Gram(KhatriRao(a, b));
  Matrix rhs = Gram(a).Hadamard(Gram(b));
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KhatriRaoGramTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace sofia
