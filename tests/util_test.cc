#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndSorted) {
  Rng rng(4);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
    EXPECT_LT(sample[i], 100u);
  }
  // Full sample returns everything.
  std::vector<size_t> all = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, NormalVectorHasRequestedMoments) {
  Rng rng(5);
  std::vector<double> v = rng.NormalVector(20000, 2.0, 3.0);
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

// --- Flags -------------------------------------------------------------------

Flags ParseFlags(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesTypedValues) {
  Flags f = ParseFlags({"--scale=paper", "--steps=200", "--mu=0.05",
                        "--verbose", "positional"});
  EXPECT_TRUE(f.Has("scale"));
  EXPECT_EQ(f.GetString("scale", "small"), "paper");
  EXPECT_EQ(f.GetInt("steps", 0), 200);
  EXPECT_DOUBLE_EQ(f.GetDouble("mu", 0.0), 0.05);
  EXPECT_TRUE(f.GetBool("verbose", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = ParseFlags({});
  EXPECT_FALSE(f.Has("anything"));
  EXPECT_EQ(f.GetString("scale", "small"), "small");
  EXPECT_EQ(f.GetInt("steps", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("mu", 0.5), 0.5);
  EXPECT_FALSE(f.GetBool("verbose", false));
}

// --- Table --------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "2.5"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatsSignificantDigits) {
  EXPECT_EQ(Table::Num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::Num(1234567.0, 3), "1.23e+06");
}

// --- Stopwatch ------------------------------------------------------------------

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace sofia
